"""The AST walk shared by every rule.

One :class:`ModuleContext` is built per analysed file: it parses the
module once, resolves the import table (so rules can tell stdlib
``random`` from a local variable that happens to share the name),
links every node to its parent, and exposes the helpers rules need --
dotted-name resolution for call targets, source-line snippets, the
enclosing top-level function of a node.  :class:`Analyzer` then runs
all applicable rules over a single walk of the tree, dispatching
``visit_<NodeType>`` hooks, so analysis cost stays O(nodes), not
O(nodes x rules).
"""

from __future__ import annotations

import ast
from pathlib import Path, PurePosixPath

from repro.analysis.registry import (
    ROLE_LIBRARY,
    ROLE_SCRIPTS,
    ROLE_TESTS,
    Rule,
    Violation,
)

#: Directory names that mark a file as test code.
_TEST_DIR_NAMES = {"tests", "test"}
#: Directory names that mark a file as a runnable script / benchmark.
_SCRIPT_DIR_NAMES = {"scripts", "benchmarks", "examples"}


def role_for_path(path: str | Path) -> str:
    """Classify a file as ``library`` / ``scripts`` / ``tests``.

    Rules opt into roles: e.g. atomic-write discipline (REP002) binds
    package code and scripts, while tests may freely write fixture
    files; exact float assertions are idiomatic in a suite whose whole
    point is byte-identical reproducibility, so REP004 skips tests.
    """
    parts = PurePosixPath(Path(path).as_posix()).parts
    name = parts[-1] if parts else ""
    if any(part in _TEST_DIR_NAMES for part in parts[:-1]):
        return ROLE_TESTS
    if name.startswith("test_") or name.endswith("_test.py"):
        return ROLE_TESTS
    if any(part in _SCRIPT_DIR_NAMES for part in parts[:-1]):
        return ROLE_SCRIPTS
    return ROLE_LIBRARY


def module_name_for_path(path: str | Path) -> str | None:
    """Dotted module name if the file sits inside the ``repro`` package."""
    parts = list(Path(path).parts)
    if "repro" not in parts:
        return None
    index = parts.index("repro")
    dotted = [part for part in parts[index:]]
    if not dotted[-1].endswith(".py"):
        return None
    dotted[-1] = dotted[-1][: -len(".py")]
    if dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted)


class ModuleContext:
    """Everything a rule may ask about the module under analysis."""

    def __init__(self, path: str, source: str, role: str | None = None) -> None:
        self.path = path
        self.source = source
        self.role = role if role is not None else role_for_path(path)
        self.module = module_name_for_path(path)
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.violations: list[Violation] = []
        self._parents: dict[int, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
        self.imports = self._import_table()

    # ------------------------------------------------------------------
    # reporting

    def report(self, rule: Rule, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        self.violations.append(
            Violation(
                path=self.path,
                line=line,
                col=col + 1,
                rule=rule.code,
                message=message,
                snippet=self.line_text(line),
            )
        )

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    # ------------------------------------------------------------------
    # structural helpers

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(id(node))

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        """Nearest enclosing function/async-function definition, if any."""
        current = self.parent(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self.parent(current)
        return None

    def top_level_function(self, node: ast.AST) -> ast.AST | None:
        """The outermost function definition containing ``node``."""
        found = None
        current: ast.AST | None = node
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                found = current
            current = self.parent(current)
        return found

    def at_module_scope(self, node: ast.AST) -> bool:
        """True when ``node`` executes at import time (no enclosing def)."""
        current = self.parent(node)
        while current is not None:
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return False
            current = self.parent(current)
        return True

    # ------------------------------------------------------------------
    # name resolution

    def _import_table(self) -> dict[str, str]:
        """Map local names to the module/object they were imported as.

        ``import numpy as np``        -> ``{"np": "numpy"}``
        ``import random``             -> ``{"random": "random"}``
        ``from numpy import random``  -> ``{"random": "numpy.random"}``
        ``from random import shuffle``-> ``{"shuffle": "random.shuffle"}``
        """
        table: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    table[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    table[local] = f"{node.module}.{alias.name}"
        return table

    def dotted_name(self, node: ast.AST) -> str | None:
        """``a.b.c`` for a Name/Attribute chain, else ``None``."""
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        return ".".join(reversed(parts))

    def resolve_call_target(self, func: ast.AST) -> str | None:
        """Fully-qualified dotted target of a call, via the import table.

        ``np.random.shuffle`` resolves to ``numpy.random.shuffle`` when
        ``np`` was imported as numpy; an unimported head (a local
        variable) resolves to ``None`` so rules never fire on
        ``rng.shuffle`` where ``rng`` is a seeded generator instance.
        """
        dotted = self.dotted_name(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        origin = self.imports.get(head)
        if origin is None:
            return None
        return f"{origin}.{rest}" if rest else origin


class Analyzer:
    """Run a set of rule instances over one module in a single walk."""

    def __init__(self, rules: list[Rule]) -> None:
        self.rules = rules

    def run(self, ctx: ModuleContext) -> list[Violation]:
        active = [
            rule for rule in self.rules if rule.applies(ctx.role, ctx.module)
        ]
        if not active:
            return []
        # Dispatch table: node type name -> rules interested in it.
        hooks: dict[str, list] = {}
        for rule in active:
            rule.begin_module(ctx)
            for attr in dir(rule):
                if attr.startswith("visit_"):
                    hooks.setdefault(attr[len("visit_"):], []).append(
                        getattr(rule, attr)
                    )
        if hooks:
            for node in ast.walk(ctx.tree):
                for hook in hooks.get(type(node).__name__, ()):
                    hook(node, ctx)
        for rule in active:
            rule.end_module(ctx)
        ctx.violations.sort()
        return ctx.violations
