"""Rule registry and the :class:`Violation` record.

A rule is a class with a unique ``code`` (``REPxxx``), a one-line
``summary``, and a set of ``scopes`` naming the file roles it applies
to (``library`` for ``src/repro`` package code, ``scripts`` for
runnable entry points, ``tests`` for the test suite).  Rules register
themselves with the :func:`register` decorator; the engine instantiates
one rule object per analysed module, so rules may keep per-module
state.

Rules participate in analysis two ways:

* per-node hooks named ``visit_<NodeType>`` (e.g. ``visit_Call``),
  called during a single walk of the module AST;
* ``begin_module`` / ``end_module`` hooks for whole-module analyses
  (call-graph reachability, module-level state tracking).

All hooks receive the shared :class:`~repro.analysis.visitor.ModuleContext`
and report findings through ``ctx.report(self, node, message)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: File roles a rule can opt into.
ROLE_LIBRARY = "library"
ROLE_SCRIPTS = "scripts"
ROLE_TESTS = "tests"
ALL_ROLES = frozenset({ROLE_LIBRARY, ROLE_SCRIPTS, ROLE_TESTS})

#: Pseudo-code reported for files the engine cannot parse at all.
SYNTAX_ERROR_CODE = "REP000"


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: a rule fired at a source location.

    Ordering is (path, line, col, rule) so reports are deterministic
    regardless of analysis parallelism.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    snippet: str = field(default="", compare=False)

    def to_dict(self) -> dict:
        """JSON-serialisable representation (the ``--json`` schema)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "snippet": self.snippet,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Violation":
        return cls(
            path=str(record["path"]),
            line=int(record["line"]),
            col=int(record["col"]),
            rule=str(record["rule"]),
            message=str(record["message"]),
            snippet=str(record.get("snippet", "")),
        )

    def describe(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class Rule:
    """Base class for analysis rules; subclass and :func:`register`."""

    code: str = ""
    name: str = ""
    summary: str = ""
    scopes: frozenset = ALL_ROLES
    #: Module names (``repro.ioutils`` style) the rule never applies to.
    exempt_modules: tuple = ()

    def applies(self, role: str, module: str | None) -> bool:
        """Whether the rule runs at all for a file of ``role``."""
        if role not in self.scopes:
            return False
        if module is not None and module in self.exempt_modules:
            return False
        return True

    def begin_module(self, ctx) -> None:  # pragma: no cover - default hook
        """Called before the AST walk; override for setup."""

    def end_module(self, ctx) -> None:  # pragma: no cover - default hook
        """Called after the AST walk; override for whole-module checks."""


_REGISTRY: dict[str, type] = {}


def register(rule_class: type) -> type:
    """Class decorator adding a rule to the global registry."""
    code = rule_class.code
    if not code:
        raise ValueError(f"rule {rule_class.__name__} has no code")
    if code in _REGISTRY:
        raise ValueError(f"duplicate rule code {code}")
    _REGISTRY[code] = rule_class
    return rule_class


def all_rules() -> dict[str, type]:
    """``{code: rule class}`` for every registered rule (import side effect)."""
    # Importing the rule modules populates the registry exactly once.
    from repro.analysis import concurrency, rules  # noqa: F401

    return dict(_REGISTRY)


def get_rule(code: str) -> type:
    """The rule class registered under ``code``; raises ``KeyError``."""
    return all_rules()[code]


def rule_codes() -> list[str]:
    """Sorted codes of every registered rule."""
    return sorted(all_rules())
