"""Invariant-enforcing static analysis for the LEAPME reproduction.

PRs 1-3 made the library's correctness story rest on repo-wide
invariants -- byte-identical resumed aggregates, atomic on-disk writes,
parent-only journal writes, per-repetition seeded RNG -- that nothing
used to check: they lived in DESIGN.md prose and could silently regress
in any PR.  This package turns them into executable rules.

The engine is a small AST-visitor framework (:mod:`.visitor`) with a
pluggable rule registry (:mod:`.registry`).  The per-file rules live
in :mod:`.rules`; the whole-program concurrency rules (REP012-REP015)
live in :mod:`.concurrency` on top of the import-aware call graph in
:mod:`.callgraph`:

========  =============================================================
REP001    unseeded / global RNG (``np.random.*`` module functions,
          bare ``random.*``) in result-affecting code
REP002    non-atomic file writes (``open(..., "w")`` / ``Path.write_*``)
          outside :mod:`repro.ioutils`
REP003    wall-clock ``time.time()`` where ``time.monotonic()`` /
          ``perf_counter`` is required for deadlines and durations
REP004    float ``==`` / ``!=`` comparisons outside exact-zero guard
          idioms
REP005    broad ``except`` that swallows the error without re-raise,
          structured record, or logging
REP006    journal / side-effect writes reachable from worker-pool code
          paths (parent-only journal discipline)
REP007    mutable default arguments
REP008    fork-unsafe module-level mutable state mutated post-import in
          worker modules
REP009    impure feature stages: a module defining ``FeatureStage``
          subclasses importing ``repro.evaluation``, or file writes
          inside a stage class body
REP010    unstoppable watch/ingest loops: ``time.sleep`` or stop-blind
          ``while True`` in follow-mode modules
REP011    unbounded queues or timeout-less blocking calls in serving
          modules
REP012    shared attribute written outside the lock region that guards
          it elsewhere, or read-modify-written on a thread-reachable
          path
REP013    lock-order cycle in the whole-program acquisition graph
          (latent deadlock; never baselined)
REP014    blocking I/O (fsync'd journal appends, sleeps, sockets,
          timeout-less waits) while holding a lock
REP015    registered signal handler doing more than a flag write,
          ``Event.set()``, or ``os.write``
========  =============================================================

Findings can be silenced two ways: an inline ``# repro: noqa[REPxxx]``
comment on the offending line (:mod:`.suppress`) for exceptions that
are best explained at the code site, or an entry in the checked-in
baseline file (:mod:`.baseline`) for legacy findings grandfathered
until fixed.  The engine analyses files in parallel (:mod:`.engine`),
renders human and ``--json`` output (:mod:`.report`), and is exposed as
the ``repro lint`` CLI subcommand (:mod:`.cli`) with stable exit codes:
0 clean, 1 violations, 2 usage/internal error.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.callgraph import CallGraph
from repro.analysis.concurrency import ConcurrencyModel
from repro.analysis.engine import (
    AnalysisReport,
    FileReport,
    analyze_file,
    analyze_paths,
    analyze_source,
    discover_files,
)
from repro.analysis.registry import Rule, Violation, all_rules, get_rule, rule_codes
from repro.analysis.report import render_human, render_json
from repro.analysis.suppress import suppressions_for_source

__all__ = [
    "AnalysisReport",
    "Baseline",
    "CallGraph",
    "ConcurrencyModel",
    "FileReport",
    "Rule",
    "Violation",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "discover_files",
    "get_rule",
    "render_human",
    "render_json",
    "rule_codes",
    "suppressions_for_source",
]
