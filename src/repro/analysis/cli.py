"""The ``repro lint`` subcommand.

Orchestrates discovery -> parallel analysis -> noqa filtering ->
baseline matching -> rendering, and returns the stable exit code
(0 clean, 1 violations/stale baseline, 2 usage error).  Argument
registration lives here so :mod:`repro.cli` only wires the subparser.
"""

from __future__ import annotations

import argparse

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    NEVER_BASELINED,
    Baseline,
    BaselineMatch,
)
from repro.analysis.engine import analyze_paths
from repro.analysis.registry import rule_codes
from repro.analysis.report import exit_code, render_human, render_json
from repro.errors import ReproError


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Register ``repro lint``'s arguments on ``parser``."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for per-file analysis (default: machine size)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="json_output",
        help="emit the machine-readable JSON document instead of text",
    )
    parser.add_argument(
        "--select", default=None, metavar="REPxxx[,REPxxx...]",
        help="run only these rule codes",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="REPxxx[,REPxxx...]",
        help="skip these rule codes (applied after --select)",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE_NAME, metavar="PATH",
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file: every finding is fresh",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline to grandfather every current finding, "
             "then exit 0 (atomic write)",
    )
    parser.add_argument(
        "--no-noqa", action="store_true",
        help="ignore inline '# repro: noqa[...]' suppressions",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )


def run_lint(args: argparse.Namespace, *, printer=print) -> int:
    """Execute the lint run described by parsed ``args``."""
    if args.list_rules:
        from repro.analysis.registry import all_rules

        for code, rule_class in sorted(all_rules().items()):
            printer(f"{code}  {rule_class.name}: {rule_class.summary}")
        return 0
    select = _effective_select(args.select, getattr(args, "ignore", None))
    report = analyze_paths(
        args.paths,
        jobs=args.jobs,
        select=select,
        respect_noqa=not args.no_noqa,
    )
    violations = report.violations
    if args.write_baseline:
        rejected = [v for v in violations if v.rule in NEVER_BASELINED]
        grandfathered = [v for v in violations if v.rule not in NEVER_BASELINED]
        baseline = Baseline.from_violations(grandfathered)
        baseline.save(args.baseline)
        printer(
            f"baseline written to {args.baseline}: "
            f"{len(baseline)} grandfathered finding(s)"
        )
        if rejected:
            codes = ", ".join(sorted({v.rule for v in rejected}))
            printer(
                f"refused to baseline {len(rejected)} finding(s) for "
                f"never-baselined rule(s) {codes}: fix them or add an inline "
                f"justified noqa"
            )
            return 1
        return 0
    baseline = Baseline() if args.no_baseline else Baseline.load(args.baseline)
    banned = sorted(baseline.rules_present() & NEVER_BASELINED)
    if banned:
        raise ReproError(
            f"baseline {args.baseline} grandfathers never-baselined rule(s) "
            f"{', '.join(banned)}; these findings must be fixed"
        )
    match = baseline.apply(
        violations, ran_rules=None if select is None else set(select)
    )
    if args.json_output:
        printer(render_json(report, match), end="")
    else:
        printer(render_human(report, match))
    return exit_code(match, report)


def _effective_select(
    select_arg: str | None, ignore_arg: str | None
) -> tuple[str, ...] | None:
    """Compose ``--select`` and ``--ignore`` into the engine's selection.

    ``None`` (neither flag) means every rule; ``--ignore`` subtracts
    from whatever ``--select`` chose (or from the full set).  Emptying
    the selection is a usage error -- a run that checks nothing is
    almost certainly a typo.
    """
    known = set(rule_codes())

    def parse(raw: str, flag: str) -> tuple[str, ...]:
        codes = tuple(code.strip().upper() for code in raw.split(","))
        unknown = [code for code in codes if code not in known]
        if unknown:
            raise ReproError(
                f"unknown rule code(s) in {flag}: {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        return codes

    select = parse(select_arg, "--select") if select_arg else None
    ignore = parse(ignore_arg, "--ignore") if ignore_arg else ()
    if not ignore:
        return select
    base = select if select is not None else tuple(sorted(known))
    effective = tuple(code for code in base if code not in set(ignore))
    if not effective:
        raise ReproError(
            "--select/--ignore left no rules to run; drop one of the flags"
        )
    return effective


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``repro-lint`` console script)."""
    import sys

    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="invariant-enforcing static analysis for the LEAPME repo",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run_lint(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


__all__ = ["add_lint_arguments", "run_lint", "main", "BaselineMatch"]
