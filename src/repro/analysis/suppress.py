"""Inline ``# repro: noqa[REPxxx]`` suppressions.

A suppression silences specific rules on the physical line it sits on:

    _PREBUILT.update(...)  # repro: noqa[REP008] pre-fork by construction

Several codes may be listed (``# repro: noqa[REP005,REP008]``).  A bare
``# repro: noqa`` (no codes) silences every rule on the line; prefer
the coded form -- it keeps the justification attached to one invariant
and lets new rules still fire on the line.  Etiquette: always follow
the bracket with a short reason, as above; the suppression is a claim
that a human checked the invariant holds for a reason the analyzer
cannot see.
"""

from __future__ import annotations

import re

#: Matches the suppression comment anywhere in a physical line.
_NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)

#: Sentinel meaning "every rule" for a bare ``# repro: noqa``.
ALL_CODES = "*"


def suppressions_for_source(source: str) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the rule codes suppressed there."""
    table: dict[int, frozenset[str]] = {}
    for line_number, line in enumerate(source.splitlines(), start=1):
        if "#" not in line:
            continue
        match = _NOQA_PATTERN.search(line)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            table[line_number] = frozenset({ALL_CODES})
        else:
            table[line_number] = frozenset(
                code.strip().upper() for code in codes.split(",") if code.strip()
            )
    return table


def is_suppressed(
    suppressions: dict[int, frozenset[str]], line: int, rule: str
) -> bool:
    """Whether ``rule`` is silenced on ``line``."""
    codes = suppressions.get(line)
    if codes is None:
        return False
    return ALL_CODES in codes or rule.upper() in codes
