"""File discovery and (parallel) per-file analysis.

The unit of work is one file: parse, run every applicable rule, filter
inline suppressions.  Files are independent, so the engine fans them
out over a process pool (``fork`` where available, mirroring the
evaluation engine's choice) and reassembles results in deterministic
path order; ``jobs=1`` or small inputs stay serial.  A file the parser
rejects is reported as a ``REP000`` finding rather than crashing the
run -- a syntax error in one module must not hide findings in the
other hundred.

The concurrency rules (REP012-REP015) are the exception to per-file
independence: their closures cross module boundaries (a handler thread
in ``serve.server`` reaches writes in ``serve.registry``), so
:func:`analyze_paths` strips them from the worker pass and runs one
serial *project pass* in the parent over every library-role module,
merging the findings back into the per-file reports and attaching the
lock-order graph as :attr:`AnalysisReport.concurrency`.  Output stays
deterministic and identical for any ``jobs`` value: the pool handles
per-file rules, the parent handles cross-module ones, both in path
order.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.concurrency import PROJECT_RULE_CODES, ConcurrencyModel
from repro.analysis.registry import (
    ROLE_LIBRARY,
    SYNTAX_ERROR_CODE,
    Violation,
    all_rules,
)
from repro.analysis.suppress import is_suppressed, suppressions_for_source
from repro.analysis.visitor import Analyzer, ModuleContext, role_for_path
from repro.errors import ReproError

#: Directory names never descended into during discovery.
_SKIP_DIR_NAMES = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "node_modules"}

#: Below this many files, process-pool start-up costs more than it saves.
_PARALLEL_THRESHOLD = 8


@dataclass
class FileReport:
    """Per-file analysis outcome (picklable across the worker pool)."""

    path: str
    violations: list[Violation] = field(default_factory=list)
    suppressed: int = 0
    error: str | None = None


@dataclass
class AnalysisReport:
    """Aggregate over every analysed file, in deterministic path order."""

    files: list[FileReport] = field(default_factory=list)
    #: Lock-order graph + thread roots from the cross-module concurrency
    #: pass; ``None`` when the selection excluded REP012-REP015.
    concurrency: dict | None = None

    @property
    def violations(self) -> list[Violation]:
        found = [violation for report in self.files for violation in report.violations]
        found.sort()
        return found

    @property
    def suppressed(self) -> int:
        return sum(report.suppressed for report in self.files)

    @property
    def errors(self) -> list[FileReport]:
        return [report for report in self.files if report.error is not None]


def discover_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                found.add(path)
            continue
        if not path.is_dir():
            raise ReproError(f"lint path does not exist: {path}")
        for candidate in path.rglob("*.py"):
            parts = candidate.relative_to(path).parts
            if any(
                part in _SKIP_DIR_NAMES or part.startswith(".")
                for part in parts[:-1]
            ):
                continue
            found.add(candidate)
    return sorted(found)


def analyze_source(
    source: str,
    path: str = "<string>",
    *,
    role: str | None = None,
    select: tuple[str, ...] | None = None,
    respect_noqa: bool = True,
) -> FileReport:
    """Analyse one module given as text (the test-fixture entry point)."""
    registry = all_rules()
    codes = sorted(select) if select is not None else sorted(registry)
    unknown = [code for code in codes if code not in registry]
    if unknown:
        raise ReproError(f"unknown rule code(s): {', '.join(unknown)}")
    try:
        ctx = ModuleContext(path, source, role=role)
    except SyntaxError as error:
        return FileReport(
            path=path,
            violations=[
                Violation(
                    path=path,
                    line=error.lineno or 1,
                    col=(error.offset or 0) or 1,
                    rule=SYNTAX_ERROR_CODE,
                    message=f"file does not parse: {error.msg}",
                    snippet=(error.text or "").strip(),
                )
            ],
            error=f"syntax error: {error.msg}",
        )
    rules = [registry[code]() for code in codes]
    violations = Analyzer(rules).run(ctx)
    if not respect_noqa:
        return FileReport(path=path, violations=violations)
    suppressions = suppressions_for_source(source)
    kept = [
        violation
        for violation in violations
        if not is_suppressed(suppressions, violation.line, violation.rule)
    ]
    return FileReport(
        path=path, violations=kept, suppressed=len(violations) - len(kept)
    )


def analyze_file(
    path: str | Path,
    *,
    select: tuple[str, ...] | None = None,
    respect_noqa: bool = True,
) -> FileReport:
    """Analyse one file on disk; unreadable files become error reports."""
    display = _display_path(path)
    try:
        source = Path(path).read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        return FileReport(path=display, error=str(error))
    return analyze_source(
        source, display, select=select, respect_noqa=respect_noqa
    )


def _display_path(path: str | Path) -> str:
    """Repo-relative posix path when possible (stable across machines)."""
    path = Path(path)
    try:
        relative = path.resolve().relative_to(Path.cwd().resolve())
        return relative.as_posix()
    except ValueError:
        return path.as_posix()


def _analyze_for_pool(item: tuple[str, tuple[str, ...] | None, bool]) -> FileReport:
    path, select, respect_noqa = item
    return analyze_file(path, select=select, respect_noqa=respect_noqa)


def analyze_paths(
    paths: list[str | Path],
    *,
    jobs: int | None = None,
    select: tuple[str, ...] | None = None,
    respect_noqa: bool = True,
) -> AnalysisReport:
    """Analyse every ``.py`` file under ``paths``, in parallel when it pays.

    ``jobs=None`` sizes the pool to the machine; results are identical
    to serial analysis regardless of ``jobs`` (asserted by the test
    suite) because files are independent and output order is by path.
    The cross-module concurrency rules run once in the parent (serial,
    path-ordered), so they preserve that invariant too.
    """
    files = discover_files(paths)
    registry = all_rules()
    requested = sorted(select) if select is not None else sorted(registry)
    unknown = [code for code in requested if code not in registry]
    if unknown:
        raise ReproError(f"unknown rule code(s): {', '.join(unknown)}")
    project_codes = tuple(
        code for code in requested if code in PROJECT_RULE_CODES
    )
    per_file_select = tuple(
        code for code in requested if code not in PROJECT_RULE_CODES
    )
    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = max(1, min(jobs, len(files) or 1))
    items = [(str(path), per_file_select, respect_noqa) for path in files]
    if jobs == 1 or len(files) < _PARALLEL_THRESHOLD:
        reports = [_analyze_for_pool(item) for item in items]
    else:
        context = _pool_context()
        with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
            chunk = max(1, len(items) // (jobs * 4))
            reports = list(pool.map(_analyze_for_pool, items, chunksize=chunk))
    report = AnalysisReport(files=reports)
    if project_codes:
        merged, concurrency = _project_pass(files, project_codes, respect_noqa)
        by_path = {file_report.path: file_report for file_report in report.files}
        for path, (violations, suppressed) in merged.items():
            file_report = by_path.get(path)
            if file_report is None:
                continue
            file_report.violations = sorted(
                file_report.violations + violations
            )
            file_report.suppressed += suppressed
        report.concurrency = concurrency
    return report


def _project_pass(
    files: list[Path],
    codes: tuple[str, ...],
    respect_noqa: bool,
) -> tuple[dict[str, tuple[list[Violation], int]], dict]:
    """One cross-module concurrency model over every library module.

    Unreadable/unparseable files are skipped here -- the per-file pass
    already reported them (REP000 / error report); the model simply
    analyses the modules that do parse.
    """
    contexts: list[ModuleContext] = []
    sources: dict[str, str] = {}
    for path in files:
        display = _display_path(path)
        if role_for_path(display) != ROLE_LIBRARY:
            continue
        try:
            source = Path(path).read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue
        try:
            ctx = ModuleContext(display, source)
        except SyntaxError:
            continue
        contexts.append(ctx)
        sources[display] = source
    model = ConcurrencyModel(contexts)
    wanted = set(codes)
    grouped: dict[str, list[Violation]] = {}
    for finding in model.findings:
        if finding.code not in wanted:
            continue
        line = getattr(finding.node, "lineno", 1)
        col = getattr(finding.node, "col_offset", 0) + 1
        grouped.setdefault(finding.ctx.path, []).append(
            Violation(
                path=finding.ctx.path,
                line=line,
                col=col,
                rule=finding.code,
                message=finding.message,
                snippet=finding.ctx.line_text(line),
            )
        )
    merged: dict[str, tuple[list[Violation], int]] = {}
    for path, violations in grouped.items():
        suppressed = 0
        if respect_noqa:
            table = suppressions_for_source(sources[path])
            kept = [
                violation
                for violation in violations
                if not is_suppressed(table, violation.line, violation.rule)
            ]
            suppressed = len(violations) - len(kept)
            violations = kept
        merged[path] = (sorted(violations), suppressed)
    return merged, model.lock_order_report()


def _pool_context():
    """Prefer ``fork``: cheap start-up, matching the evaluation engine."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()
