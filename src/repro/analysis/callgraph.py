"""Import-aware inter-module call graph for whole-program analyses.

REP006 already walks an *intra*-module call graph (worker-entry
closure); the concurrency rules (REP012-REP015) need to know what a
request-handler thread in ``repro.serve.server`` can reach inside
``repro.serve.registry`` -- a *cross-module* question.  This module
builds that graph once per analysis run from the same
:class:`~repro.analysis.visitor.ModuleContext` objects the per-file
rules use.

Nodes are qualified function names (``repro.serve.registry.
TenantRegistry.create``; nested defs extend their parent's name).
Edges are resolved conservatively, in decreasing order of confidence:

* a dotted call whose head is in the import table resolves through it
  (``registry.create`` after ``from repro.serve import registry``);
* ``self.method()`` / ``cls.method()`` resolves within the enclosing
  class;
* a bare name resolves to a sibling nested def, then a module-level
  function, then an imported function, then a same-module class
  (``_Slot(...)`` edges to ``_Slot.__init__``);
* ``obj.method()`` on an untyped receiver falls back to *every*
  analysed class method with that attribute name -- except names in
  :data:`GENERIC_METHOD_NAMES`, which are so common on stdlib
  containers that matching them would connect everything to
  everything.

The fallback means the graph over-approximates (extra edges, never
missing same-name project edges), which is the right direction for the
closure consumers: reachability-based rules stay sound, and the
generic-name cut keeps the over-approximation from degenerating.
Known under-approximations, accepted deliberately: calls through
``functools.partial``/callback tables, inherited methods called on a
subclass that does not redefine them, and ``with obj:`` context-manager
``__enter__``/``__exit__`` dispatch.
"""

from __future__ import annotations

import ast

from repro.analysis.visitor import ModuleContext

#: Attribute names too generic to match across modules by name alone:
#: resolving ``x.get()`` to every project method named ``get`` would
#: drown the graph in dict/set/queue/threading false edges.
GENERIC_METHOD_NAMES = frozenset({
    "acquire", "add", "append", "clear", "close", "copy", "count",
    "decode", "discard", "encode", "endswith", "exists", "extend",
    "format", "get", "index", "insert", "is_set", "items", "join",
    "keys", "lower", "mkdir", "notify", "notify_all", "open", "pop",
    "popitem", "put", "read", "release", "remove", "replace", "result",
    "run", "set", "setdefault", "sort", "split", "start", "startswith",
    "strip", "submit", "update", "upper", "values", "wait", "write",
})


class FunctionInfo:
    """One analysed function: its AST, owning class/module, and context."""

    __slots__ = ("qualname", "module", "cls", "name", "node", "ctx", "parent")

    def __init__(self, qualname, module, cls, name, node, ctx, parent):
        self.qualname = qualname
        self.module = module
        self.cls = cls
        self.name = name
        self.node = node
        self.ctx = ctx
        #: Qualname of the enclosing function for nested defs, else None.
        self.parent = parent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionInfo({self.qualname})"


def own_nodes(node: ast.AST):
    """Yield the nodes of a function body, excluding nested def/class scopes.

    Code inside a nested ``def`` runs when the *nested* function is
    called, so its calls and writes belong to the nested function's
    graph node, not the enclosing one.
    """
    stack = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield current
        stack.extend(ast.iter_child_nodes(current))


class CallGraph:
    """Cross-module call graph over a set of analysed modules."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.edges: dict[str, set[str]] = {}
        self._module_level: dict[tuple[str, str], str] = {}
        self._class_methods: dict[tuple[str, str, str], str] = {}
        self._methods_by_name: dict[str, list[str]] = {}
        self._classes: dict[tuple[str, str], ast.ClassDef] = {}
        self._children: dict[str, dict[str, str]] = {}

    @classmethod
    def from_modules(cls, contexts: list[ModuleContext]) -> "CallGraph":
        graph = cls()
        for ctx in contexts:
            graph._collect_module(ctx)
        graph._build_edges()
        return graph

    # ------------------------------------------------------------------
    # collection

    def _collect_module(self, ctx: ModuleContext) -> None:
        module = ctx.module or ctx.path

        def visit(node: ast.AST, cls_name: str | None, prefix: str,
                  parent: str | None) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    self._classes[(module, child.name)] = child
                    visit(child, child.name, f"{prefix}.{child.name}", None)
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}.{child.name}"
                    info = FunctionInfo(
                        qualname, module, cls_name, child.name, child, ctx, parent
                    )
                    self.functions[qualname] = info
                    if cls_name is not None:
                        self._class_methods[(module, cls_name, child.name)] = qualname
                        self._methods_by_name.setdefault(child.name, []).append(
                            qualname
                        )
                    elif parent is None:
                        self._module_level[(module, child.name)] = qualname
                    if parent is not None:
                        self._children.setdefault(parent, {})[child.name] = qualname
                    visit(child, None, qualname, qualname)
                else:
                    visit(child, cls_name, prefix, parent)

        visit(ctx.tree, None, module, None)

    def class_exists(self, module: str, name: str) -> bool:
        return (module, name) in self._classes

    def class_def(self, module: str, name: str) -> ast.ClassDef | None:
        return self._classes.get((module, name))

    def classes(self):
        """Iterate ``((module, class name), ClassDef)`` pairs."""
        return self._classes.items()

    def method(self, module: str, cls_name: str, name: str) -> str | None:
        return self._class_methods.get((module, cls_name, name))

    def methods_named(self, name: str) -> tuple[str, ...]:
        return tuple(sorted(self._methods_by_name.get(name, ())))

    # ------------------------------------------------------------------
    # resolution

    def _resolve_dotted(self, dotted: str) -> str | None:
        """``pkg.mod.func`` / ``pkg.mod.Class`` / ``pkg.mod.Class.meth``."""
        if dotted in self.functions:
            return dotted
        module, _, last = dotted.rpartition(".")
        if not module:
            return None
        found = self._module_level.get((module, last))
        if found is not None:
            return found
        if (module, last) in self._classes:
            return self._class_methods.get((module, last, "__init__"))
        outer, _, cls_name = module.rpartition(".")
        if outer:
            found = self._class_methods.get((outer, cls_name, last))
            if found is not None:
                return found
        return None

    def resolve_name(self, info: FunctionInfo, name: str) -> str | None:
        """A bare-name reference from inside ``info``'s body."""
        current: str | None = info.qualname
        while current is not None:
            nested = self._children.get(current, {}).get(name)
            if nested is not None:
                return nested
            current = self.functions[current].parent if current in self.functions else None
        found = self._module_level.get((info.module, name))
        if found is not None:
            return found
        if (info.module, name) in self._classes:
            init = self._class_methods.get((info.module, name, "__init__"))
            if init is not None:
                return init
        imported = info.ctx.imports.get(name)
        if imported is not None:
            return self._resolve_dotted(imported)
        return None

    def resolve_target(self, info: FunctionInfo, expr: ast.AST,
                       *, generic_cut: bool = True) -> tuple[str, ...]:
        """Function(s) an expression may refer to (call target, thread target).

        ``generic_cut=False`` disables the common-name exclusion -- a
        ``threading.Thread(target=obj.run)`` names its target explicitly,
        so even a generic name like ``run`` should resolve.
        """
        if isinstance(expr, ast.Name):
            found = self.resolve_name(info, expr.id)
            return (found,) if found is not None else ()
        if not isinstance(expr, ast.Attribute):
            return ()
        resolved = info.ctx.resolve_call_target(expr)
        if resolved is not None:
            found = self._resolve_dotted(resolved)
            return (found,) if found is not None else ()
        attr = expr.attr
        receiver = expr.value
        if (
            isinstance(receiver, ast.Name)
            and receiver.id in ("self", "cls")
            and info.cls is not None
        ):
            found = self._class_methods.get((info.module, info.cls, attr))
            if found is not None:
                return (found,)
        if generic_cut and attr in GENERIC_METHOD_NAMES:
            return ()
        if attr.startswith("__") and attr.endswith("__"):
            # ``super().__init__``/dunder protocol calls would link every
            # class in the project; explicit constructor calls resolve
            # through the class-name path instead.
            return ()
        return self.methods_named(attr)

    # ------------------------------------------------------------------
    # edges + closure

    def _build_edges(self) -> None:
        for qualname, info in self.functions.items():
            targets: set[str] = set()
            for node in own_nodes(info.node):
                if isinstance(node, ast.Call):
                    targets.update(self.resolve_target(info, node.func))
            targets.discard(qualname)
            self.edges[qualname] = targets

    def callees(self, qualname: str) -> set[str]:
        return set(self.edges.get(qualname, ()))

    def closure(self, roots) -> set[str]:
        """Every function reachable from ``roots`` (roots included)."""
        seen: set[str] = set()
        stack = [root for root in roots if root in self.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, ()))
        return seen
