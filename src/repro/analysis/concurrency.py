"""Whole-program concurrency analysis: REP012-REP015.

PR 8 made the reproduction a long-lived threaded service; these rules
make its concurrency discipline *statically* checkable instead of
relying on chaos tests to hit the right interleavings.  The analysis
runs over a :class:`ConcurrencyModel` built from one or many
:class:`~repro.analysis.visitor.ModuleContext` objects:

**Thread roots.**  Entry points that run concurrently with the main
thread: ``threading.Thread(target=...)`` targets, request-handler
methods of ``*RequestHandler`` subclasses (``ThreadingHTTPServer``
spawns one thread per request), registered ``signal.signal`` handlers,
and the follow-daemon/watcher loops in ``repro.ingest``.  A root is
*multi* when many instances run at once (request handlers; thread
targets spawned inside a loop) -- only those make unsynchronised
read-modify-writes racy on their own.

**Lock regions.**  Attributes and module globals bound to
``threading.Lock/RLock/Condition`` are lock identities
(``TenantRegistry._lock``); ``with`` blocks over them (including
aliases: ``lk = self._lock`` and ``self._alias = self._lock``) define
held-lock regions, tracked per statement.

The rules:

========  =============================================================
REP012    shared-state write outside any lock region: an attribute
          written with a lock held elsewhere in the module but bare
          here ("inconsistently guarded"), or an unguarded augmented
          assignment (read-modify-write) reachable from a multi root
REP013    lock-order cycle: ``with A: ... with B:`` in one code path
          and the reverse nesting in another (including acquisitions
          reached through calls made while holding a lock)
REP014    blocking call while holding a lock: ``fsync``, ``sleep``,
          socket/subprocess ops, ``Event.wait``/``join`` (waiting on
          the *held* Condition is exempt -- ``wait`` releases it), and
          fsynced journal appends
REP015    non-signal-safe work in a registered signal handler --
          anything beyond flag/attribute assignment, ``Event.set()``
          and ``os.write``
========  =============================================================

REP012/REP014 are scoped to the threaded subsystems (``serve``,
``ingest``, ``supervisor`` module tags, plus any module that spawns
its own roots); REP013 cycles and REP015 handlers are reported
wherever they occur.  In a full ``repro lint`` run the engine builds
one model over every library module so closures cross file boundaries
(:mod:`repro.analysis.callgraph`); ``analyze_source`` fixtures get a
single-module model through the normal rule hooks, same semantics.
Policy: REP013 findings are never baselined -- a lock cycle is a
latent deadlock with no acceptable legacy state.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.callgraph import CallGraph, FunctionInfo, own_nodes
from repro.analysis.registry import ROLE_LIBRARY, Rule, register
from repro.analysis.visitor import ModuleContext

#: Rule codes computed by the cross-module project pass in
#: :func:`repro.analysis.engine.analyze_paths` (and excluded from the
#: per-file worker pass there, so findings are not duplicated).
PROJECT_RULE_CODES = frozenset({"REP012", "REP013", "REP014", "REP015"})

#: Callables whose result is a lock identity.
_LOCK_FACTORIES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
})

#: Module-name fragments marking the threaded subsystems REP012/REP014
#: police.  Modules that spawn their own thread roots are always in
#: scope; everything else (single-threaded core code) is not.
_MODULE_TAGS = ("serve", "ingest", "handler", "watch", "supervisor")

#: Fully-resolved call targets that block (REP014).
_BLOCKING_TARGETS = frozenset({"os.fsync", "time.sleep", "select.select"})
_BLOCKING_PREFIXES = ("subprocess.", "socket.")

#: Method names that block regardless of receiver type.
_BLOCKING_ATTRS = frozenset({
    "fsync", "sleep", "communicate", "accept", "recv", "recvfrom",
    "sendall", "connect",
})

#: Waits: blocking unless the receiver is the lock being held
#: (``Condition.wait`` atomically releases it).
_WAIT_ATTRS = frozenset({"wait", "join"})

#: Journal append methods (fsync per append -- see REP006's list) plus
#: anything whose dotted path mentions the journal.
_JOURNAL_ATTRS = frozenset({
    "fsync_append_line", "record_quality", "record_skip", "record_failure",
})

#: Request-handler method names that run on per-request threads.
_HANDLER_METHOD_NAMES = frozenset({"handle", "handle_one_request", "setup", "finish"})

#: Constructors never race: the object is not yet published.
_CONSTRUCTOR_NAMES = frozenset({"__init__", "__post_init__", "__new__"})

#: Statement types a signal handler may contain (REP015).
_SIGNAL_SAFE_STMTS = (
    ast.Assign, ast.AnnAssign, ast.AugAssign, ast.Expr, ast.Return,
    ast.Pass, ast.If, ast.Nonlocal, ast.Global,
)


@dataclass(frozen=True)
class ThreadRoot:
    """One discovered concurrent entry point."""

    qualname: str
    kind: str  # "thread" | "handler" | "signal" | "daemon"
    multi: bool
    path: str
    line: int

    def to_dict(self) -> dict:
        return {
            "function": self.qualname,
            "kind": self.kind,
            "multi": self.multi,
            "path": self.path,
            "line": self.line,
        }


@dataclass
class _CallFacts:
    node: ast.Call
    held: tuple[str, ...]
    dotted: str | None
    resolved: str | None
    attr: str | None
    receiver_lock: str | None
    callees: tuple[str, ...]


@dataclass
class _WriteFacts:
    attr: str
    node: ast.AST
    held: tuple[str, ...]
    augmented: bool
    owner: str


@dataclass
class _Acquire:
    lock: str
    held: tuple[str, ...]
    node: ast.AST


@dataclass
class _FunctionFacts:
    info: FunctionInfo
    acquires: list
    calls: list
    writes: list


@dataclass(frozen=True)
class Finding:
    """One concurrency finding, carrying the node for reporting."""

    code: str
    ctx: ModuleContext
    node: ast.AST
    message: str


class ConcurrencyModel:
    """Thread roots, lock regions, and the four rule checks over them."""

    def __init__(self, contexts: list[ModuleContext]) -> None:
        self.contexts = list(contexts)
        self.graph = CallGraph.from_modules(self.contexts)
        self._class_locks: dict[tuple[str, str], dict[str, str]] = {}
        self._module_locks: dict[str, dict[str, str]] = {}
        self._discover_locks()
        self._facts: dict[str, _FunctionFacts] = {}
        for qualname, info in self.graph.functions.items():
            self._facts[qualname] = self._scan_function(info)
        self.roots: list[ThreadRoot] = []
        self._signal_registrations: list[tuple[str, ast.AST]] = []
        self._discover_roots()
        self.concurrent = self.graph.closure(root.qualname for root in self.roots)
        self.hot = self.graph.closure(
            root.qualname for root in self.roots if root.multi
        )
        self._lock_edges: dict[tuple[str, str], tuple[str, int]] = {}
        self._lock_cycles: list[tuple[str, ...]] = []
        self.findings: list[Finding] = []
        self._check_rep012()
        self._check_rep013()
        self._check_rep014()
        self._check_rep015()
        self.findings.sort(
            key=lambda f: (f.ctx.path, getattr(f.node, "lineno", 0), f.code)
        )

    # ------------------------------------------------------------------
    # scope

    def _module_key(self, ctx: ModuleContext) -> str:
        return ctx.module or ctx.path

    def _in_scope(self, module: str, ctx: ModuleContext) -> bool:
        if ctx.module is None:
            return True
        if any(tag in ctx.module for tag in _MODULE_TAGS):
            return True
        return any(
            self.graph.functions[root.qualname].module == module
            for root in self.roots
        )

    # ------------------------------------------------------------------
    # lock discovery

    def _lock_value(self, ctx: ModuleContext, value: ast.AST) -> bool:
        return (
            isinstance(value, ast.Call)
            and ctx.resolve_call_target(value.func) in _LOCK_FACTORIES
        )

    def _discover_locks(self) -> None:
        for ctx in self.contexts:
            module = self._module_key(ctx)
            short = module.rsplit(".", 1)[-1]
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                    continue
                if not self._lock_value(ctx, node.value):
                    continue
                target = node.targets[0]
                if isinstance(target, ast.Name) and ctx.at_module_scope(node):
                    self._module_locks.setdefault(module, {})[target.id] = (
                        f"{short}.{target.id}"
                    )
                elif isinstance(target, ast.Attribute) and isinstance(
                    target.value, ast.Name
                ) and target.value.id == "self":
                    cls = self._enclosing_class(ctx, node)
                    if cls is not None:
                        self._class_locks.setdefault((module, cls), {})[
                            target.attr
                        ] = f"{cls}.{target.attr}"
                elif isinstance(target, ast.Name):
                    cls = self._enclosing_class(ctx, node)
                    if cls is not None and self._direct_class_body(ctx, node):
                        self._class_locks.setdefault((module, cls), {})[
                            target.id
                        ] = f"{cls}.{target.id}"
        # Alias pass: ``self._alias = self._lock`` binds the *same* lock
        # object, so the alias shares the original identity.
        for _ in range(3):
            changed = False
            for ctx in self.contexts:
                module = self._module_key(ctx)
                for node in ast.walk(ctx.tree):
                    if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                        continue
                    target = node.targets[0]
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    cls = self._enclosing_class(ctx, node)
                    if cls is None:
                        continue
                    table = self._class_locks.setdefault((module, cls), {})
                    if target.attr in table:
                        continue
                    source = self._lock_for_expr(node.value, module, cls, {})
                    if source is not None:
                        table[target.attr] = source
                        changed = True
            if not changed:
                break

    def _enclosing_class(self, ctx: ModuleContext, node: ast.AST) -> str | None:
        current = ctx.parent(node)
        while current is not None:
            if isinstance(current, ast.ClassDef):
                return current.name
            current = ctx.parent(current)
        return None

    def _direct_class_body(self, ctx: ModuleContext, node: ast.AST) -> bool:
        return isinstance(ctx.parent(node), ast.ClassDef)

    def _lock_for_expr(
        self,
        expr: ast.AST,
        module: str,
        cls: str | None,
        local_aliases: dict[str, str],
    ) -> str | None:
        """Lock identity of an expression, or None."""
        if isinstance(expr, ast.Name):
            alias = local_aliases.get(expr.id)
            if alias is not None:
                return alias
            module_table = self._module_locks.get(module, {})
            if expr.id in module_table:
                return module_table[expr.id]
            if cls is not None:
                return self._class_locks.get((module, cls), {}).get(expr.id)
            return None
        if not isinstance(expr, ast.Attribute):
            return None
        attr = expr.attr
        receiver = expr.value
        if (
            isinstance(receiver, ast.Name)
            and receiver.id in ("self", "cls")
            and cls is not None
        ):
            found = self._class_locks.get((module, cls), {}).get(attr)
            if found is not None:
                return found
        # Untyped receiver: unique match across every analysed class.
        matches = {
            table[attr]
            for table in self._class_locks.values()
            if attr in table
        }
        if len(matches) == 1:
            return next(iter(matches))
        return None

    # ------------------------------------------------------------------
    # per-function facts (held-lock regions)

    def _scan_function(self, info: FunctionInfo) -> _FunctionFacts:
        module, cls = info.module, info.cls
        facts = _FunctionFacts(info=info, acquires=[], calls=[], writes=[])
        local_aliases: dict[str, str] = {}
        for node in own_nodes(info.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                lock = self._lock_for_expr(node.value, module, cls, {})
                if lock is not None:
                    local_aliases[node.targets[0].id] = lock
        held: list[str] = []

        def record_call(node: ast.Call) -> None:
            func = node.func
            dotted = info.ctx.dotted_name(func)
            resolved = info.ctx.resolve_call_target(func)
            attr = func.attr if isinstance(func, ast.Attribute) else None
            receiver_lock = (
                self._lock_for_expr(func.value, module, cls, local_aliases)
                if isinstance(func, ast.Attribute)
                else None
            )
            facts.calls.append(
                _CallFacts(
                    node=node,
                    held=tuple(held),
                    dotted=dotted,
                    resolved=resolved,
                    attr=attr,
                    receiver_lock=receiver_lock,
                    callees=tuple(sorted(self.graph.resolve_target(info, func))),
                )
            )

        def record_write(target: ast.AST, augmented: bool) -> None:
            if isinstance(target, ast.Attribute):
                facts.writes.append(
                    _WriteFacts(
                        attr=target.attr,
                        node=target,
                        held=tuple(held),
                        augmented=augmented,
                        owner=info.qualname,
                    )
                )
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    record_write(element, augmented)

        def walk(node: ast.AST) -> None:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                return
            if isinstance(node, ast.With):
                acquired: list[str] = []
                for item in node.items:
                    lock = self._lock_for_expr(
                        item.context_expr, module, cls, local_aliases
                    )
                    if lock is not None:
                        facts.acquires.append(
                            _Acquire(lock=lock, held=tuple(held), node=item.context_expr)
                        )
                        if lock not in held:
                            held.append(lock)
                            acquired.append(lock)
                    else:
                        walk(item.context_expr)
                for stmt in node.body:
                    walk(stmt)
                for lock in acquired:
                    held.remove(lock)
                return
            if isinstance(node, ast.Call):
                record_call(node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    record_write(target, augmented=False)
            elif isinstance(node, ast.AugAssign):
                record_write(node.target, augmented=True)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                record_write(node.target, augmented=False)
            for child in ast.iter_child_nodes(node):
                walk(child)

        for stmt in info.node.body:
            walk(stmt)
        return facts

    # ------------------------------------------------------------------
    # thread roots

    def _discover_roots(self) -> None:
        seen: set[tuple[str, str]] = set()

        def add(qualname: str, kind: str, multi: bool, ctx: ModuleContext,
                node: ast.AST) -> None:
            if qualname not in self.graph.functions:
                return
            key = (qualname, kind)
            if key in seen:
                return
            seen.add(key)
            self.roots.append(
                ThreadRoot(
                    qualname=qualname,
                    kind=kind,
                    multi=multi,
                    path=ctx.path,
                    line=getattr(node, "lineno", 1),
                )
            )

        for facts in self._facts.values():
            info = facts.info
            for call in facts.calls:
                if call.resolved == "threading.Thread":
                    target = self._thread_target(call.node)
                    if target is None:
                        continue
                    multi = self._inside_loop(info.ctx, call.node)
                    for qualname in self.graph.resolve_target(
                        info, target, generic_cut=False
                    ):
                        add(qualname, "thread", multi, info.ctx, call.node)
                elif call.resolved == "signal.signal" and len(call.node.args) >= 2:
                    handler = call.node.args[1]
                    targets = self.graph.resolve_target(
                        info, handler, generic_cut=False
                    )
                    for qualname in targets:
                        add(qualname, "signal", False, info.ctx, call.node)
                        self._signal_registrations.append((qualname, call.node))
        for (module, cls_name), class_node in self.graph.classes():
            ctx = self._context_for_module(module)
            if ctx is None:
                continue
            if self._is_handler_class(ctx, class_node):
                for method in self._class_method_names(module, cls_name):
                    if method.startswith("do_") or method in _HANDLER_METHOD_NAMES:
                        qualname = self.graph.method(module, cls_name, method)
                        if qualname is not None:
                            add(qualname, "handler", True, ctx, class_node)
            elif (
                ctx.module is not None
                and "ingest" in ctx.module
                and (cls_name.endswith("Daemon") or cls_name.endswith("Watcher"))
            ):
                qualname = self.graph.method(module, cls_name, "run")
                if qualname is not None:
                    add(qualname, "daemon", False, ctx, class_node)
        self.roots.sort(key=lambda root: (root.path, root.line, root.qualname))

    def _context_for_module(self, module: str) -> ModuleContext | None:
        for ctx in self.contexts:
            if self._module_key(ctx) == module:
                return ctx
        return None

    def _class_method_names(self, module: str, cls_name: str) -> list[str]:
        return sorted(
            info.name
            for info in self.graph.functions.values()
            if info.module == module and info.cls == cls_name
        )

    @staticmethod
    def _thread_target(node: ast.Call) -> ast.AST | None:
        for keyword in node.keywords:
            if keyword.arg == "target":
                return keyword.value
        if len(node.args) >= 2:
            return node.args[1]
        return None

    @staticmethod
    def _is_handler_class(ctx: ModuleContext, node: ast.ClassDef) -> bool:
        for base in node.bases:
            dotted = ctx.dotted_name(base) or ""
            if "RequestHandler" in dotted.rpartition(".")[2]:
                return True
        return False

    def _inside_loop(self, ctx: ModuleContext, node: ast.AST) -> bool:
        current = ctx.parent(node)
        while current is not None and not isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            if isinstance(
                current,
                (ast.For, ast.While, ast.ListComp, ast.SetComp, ast.DictComp,
                 ast.GeneratorExp),
            ):
                return True
            current = ctx.parent(current)
        return False

    # ------------------------------------------------------------------
    # REP012: unguarded shared-state writes

    def _check_rep012(self) -> None:
        by_module: dict[str, list[_FunctionFacts]] = {}
        for facts in self._facts.values():
            by_module.setdefault(facts.info.module, []).append(facts)
        for ctx in self.contexts:
            module = self._module_key(ctx)
            if not self._in_scope(module, ctx):
                continue
            module_facts = by_module.get(module, ())
            guarded = {
                write.attr
                for facts in module_facts
                for write in facts.writes
                if write.held
            }
            for facts in module_facts:
                if facts.info.name in _CONSTRUCTOR_NAMES:
                    continue
                for write in facts.writes:
                    if write.held:
                        continue
                    if write.augmented and write.owner in self.hot:
                        self.findings.append(
                            Finding(
                                "REP012",
                                ctx,
                                write.node,
                                f"unguarded read-modify-write of attribute "
                                f"{write.attr!r} on a code path that concurrent "
                                f"threads execute; increments outside a lock "
                                f"lose updates",
                            )
                        )
                    elif write.attr in guarded and write.owner in self.concurrent:
                        self.findings.append(
                            Finding(
                                "REP012",
                                ctx,
                                write.node,
                                f"inconsistently guarded write: attribute "
                                f"{write.attr!r} is written under a lock "
                                f"elsewhere in this module but bare here, on a "
                                f"thread-reachable path",
                            )
                        )

    # ------------------------------------------------------------------
    # REP013: lock-order cycles

    def _acquired_transitively(self) -> dict[str, set[str]]:
        direct = {
            qualname: {acquire.lock for acquire in facts.acquires}
            for qualname, facts in self._facts.items()
        }
        closure_cache: dict[str, set[str]] = {}

        def transitive(qualname: str) -> set[str]:
            cached = closure_cache.get(qualname)
            if cached is None:
                cached = set()
                for reached in self.graph.closure((qualname,)):
                    cached |= direct.get(reached, set())
                closure_cache[qualname] = cached
            return cached

        return {qualname: transitive(qualname) for qualname in self._facts}

    def _check_rep013(self) -> None:
        acquired = self._acquired_transitively()
        edges: dict[tuple[str, str], tuple[str, int]] = {}

        def add_edge(first: str, then: str, ctx: ModuleContext,
                     node: ast.AST) -> None:
            if first == then:
                return
            site = (ctx.path, getattr(node, "lineno", 1))
            current = edges.get((first, then))
            if current is None or site < current:
                edges[(first, then)] = site

        for facts in self._facts.values():
            ctx = facts.info.ctx
            for acquire in facts.acquires:
                for held in acquire.held:
                    add_edge(held, acquire.lock, ctx, acquire.node)
            for call in facts.calls:
                if not call.held or not call.callees:
                    continue
                downstream: set[str] = set()
                for callee in call.callees:
                    downstream |= acquired.get(callee, set())
                for held in call.held:
                    for lock in downstream:
                        add_edge(held, lock, ctx, call.node)
        self._lock_edges = edges
        adjacency: dict[str, set[str]] = {}
        for first, then in edges:
            adjacency.setdefault(first, set()).add(then)
        cycles = _find_cycles(adjacency)
        self._lock_cycles = cycles
        for cycle in cycles:
            closing = min(
                (edges[(a, b)], (a, b))
                for a, b in _cycle_edges(cycle)
                if (a, b) in edges
            )
            (path, line), _ = closing
            ctx = self._context_for_path(path)
            node = _LineMarker(line)
            rendering = " -> ".join(cycle + (cycle[0],))
            self.findings.append(
                Finding(
                    "REP013",
                    ctx,
                    node,
                    f"lock-order cycle: {rendering}; one code path acquires "
                    f"these locks in the opposite order of another, which can "
                    f"deadlock under contention",
                )
            )

    def _context_for_path(self, path: str) -> ModuleContext:
        for ctx in self.contexts:
            if ctx.path == path:
                return ctx
        return self.contexts[0]

    # ------------------------------------------------------------------
    # REP014: blocking calls under a lock

    def _blocking_reason(self, call: _CallFacts) -> str | None:
        resolved = call.resolved or ""
        dotted = call.dotted or ""
        attr = call.attr
        if resolved in _BLOCKING_TARGETS:
            return f"blocking call {resolved}()"
        if any(resolved.startswith(prefix) for prefix in _BLOCKING_PREFIXES):
            return f"blocking call {resolved}()"
        if attr in _BLOCKING_ATTRS:
            return f"blocking call .{attr}()"
        if attr in _WAIT_ATTRS:
            if call.receiver_lock is not None and call.receiver_lock in call.held:
                return None  # Condition.wait releases the held lock.
            return f"blocking .{attr}() on an object that is not the held lock"
        if attr in _JOURNAL_ATTRS or "journal" in dotted.lower():
            return "fsynced journal append"
        return None

    def _check_rep014(self) -> None:
        for facts in self._facts.values():
            ctx = facts.info.ctx
            module = facts.info.module
            if not self._in_scope(module, ctx):
                continue
            for call in facts.calls:
                if not call.held:
                    continue
                reason = self._blocking_reason(call)
                if reason is not None:
                    held = ", ".join(call.held)
                    self.findings.append(
                        Finding(
                            "REP014",
                            ctx,
                            call.node,
                            f"{reason} while holding {held}; every thread "
                            f"contending for the lock stalls behind this I/O",
                        )
                    )

    # ------------------------------------------------------------------
    # REP015: signal-handler safety

    def _check_rep015(self) -> None:
        checked: set[str] = set()
        for qualname, _registration in self._signal_registrations:
            if qualname in checked:
                continue
            checked.add(qualname)
            info = self.graph.functions[qualname]
            ctx = info.ctx
            for stmt in self._handler_statements(info.node):
                if not isinstance(stmt, _SIGNAL_SAFE_STMTS):
                    self.findings.append(
                        Finding(
                            "REP015",
                            ctx,
                            stmt,
                            f"{type(stmt).__name__} statement in signal handler "
                            f"{info.name!r}; handlers interleave with any "
                            f"bytecode -- restrict them to setting a flag, "
                            f"Event.set(), or os.write()",
                        )
                    )
            for node in own_nodes(info.node):
                if not isinstance(node, ast.Call):
                    continue
                if self._signal_safe_call(ctx, node):
                    continue
                label = ctx.dotted_name(node.func) or "<call>"
                self.findings.append(
                    Finding(
                        "REP015",
                        ctx,
                        node,
                        f"call to {label}() in signal handler {info.name!r}; "
                        f"only Event.set()/flag assignment/os.write() are safe "
                        f"when the handler can interrupt arbitrary bytecode",
                    )
                )

    @staticmethod
    def _handler_statements(node: ast.AST):
        stack = list(node.body)
        while stack:
            stmt = stack.pop()
            yield stmt
            if isinstance(stmt, ast.If):
                stack.extend(stmt.body)
                stack.extend(stmt.orelse)

    @staticmethod
    def _signal_safe_call(ctx: ModuleContext, node: ast.Call) -> bool:
        resolved = ctx.resolve_call_target(node.func)
        if resolved == "os.write":
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "set", "is_set"
        ):
            return True
        return False

    # ------------------------------------------------------------------
    # report

    def lock_order_report(self) -> dict:
        """The ``--json`` ``concurrency`` section: graph, cycles, roots."""
        edges = [
            {"from": first, "to": then, "site": f"{path}:{line}"}
            for (first, then), (path, line) in sorted(self._lock_edges.items())
        ]
        locks = set()
        for table in self._class_locks.values():
            locks.update(table.values())
        for table in self._module_locks.values():
            locks.update(table.values())
        return {
            "locks": sorted(locks),
            "lock_order": {
                "edges": edges,
                "cycles": [list(cycle) for cycle in self._lock_cycles],
                "acyclic": not self._lock_cycles,
            },
            "thread_roots": [root.to_dict() for root in self.roots],
        }


class _LineMarker:
    """A minimal node-alike carrying just a location (for cycle reports)."""

    def __init__(self, line: int) -> None:
        self.lineno = line
        self.col_offset = 0


def _cycle_edges(cycle: tuple[str, ...]):
    for index, node in enumerate(cycle):
        yield node, cycle[(index + 1) % len(cycle)]


def _find_cycles(adjacency: dict[str, set[str]]) -> list[tuple[str, ...]]:
    """Elementary cycles, one per strongly connected component.

    Deadlock reporting needs *whether* a cycle exists and one witness
    path per component, not Johnson's full enumeration: Tarjan SCCs,
    then a DFS inside each non-trivial component for a representative
    cycle, canonicalised to start at its smallest lock name.
    """
    index_counter = [0]
    stack: list[str] = []
    lowlink: dict[str, int] = {}
    index: dict[str, int] = {}
    on_stack: set[str] = set()
    components: list[list[str]] = []

    def strongconnect(node: str) -> None:
        work = [(node, iter(sorted(adjacency.get(node, ()))))]
        index[node] = lowlink[node] = index_counter[0]
        index_counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        while work:
            current, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index:
                    index[successor] = lowlink[successor] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append(
                        (successor, iter(sorted(adjacency.get(successor, ()))))
                    )
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[current] = min(lowlink[current], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[current])
            if lowlink[current] == index[current]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == current:
                        break
                components.append(component)

    for node in sorted(adjacency):
        if node not in index:
            strongconnect(node)

    cycles: list[tuple[str, ...]] = []
    for component in components:
        members = set(component)
        if len(component) == 1:
            node = component[0]
            if node not in adjacency.get(node, ()):
                continue
            cycles.append((node,))
            continue
        start = min(component)
        path = [start]
        seen = {start}
        witness: tuple[str, ...] | None = None

        def dfs(current: str) -> bool:
            nonlocal witness
            for successor in sorted(adjacency.get(current, ())):
                if successor == start and len(path) > 1:
                    witness = tuple(path)
                    return True
                if successor in members and successor not in seen:
                    seen.add(successor)
                    path.append(successor)
                    if dfs(successor):
                        return True
                    path.pop()
                    seen.discard(successor)
            return False

        dfs(start)
        if witness is not None:
            cycles.append(witness)
    cycles.sort()
    return cycles


# ----------------------------------------------------------------------
# rule registration (single-module mode: analyze_source / fixtures)


def _module_findings(ctx: ModuleContext) -> list[Finding]:
    cached = getattr(ctx, "_concurrency_findings", None)
    if cached is None:
        cached = ConcurrencyModel([ctx]).findings
        ctx._concurrency_findings = cached
    return cached


class _ConcurrencyRule(Rule):
    scopes = frozenset({ROLE_LIBRARY})

    def end_module(self, ctx) -> None:
        for finding in _module_findings(ctx):
            if finding.code == self.code:
                ctx.report(self, finding.node, finding.message)


@register
class UnguardedSharedWriteRule(_ConcurrencyRule):
    code = "REP012"
    name = "unguarded-shared-write"
    summary = (
        "shared attribute written outside a lock region that guards it "
        "elsewhere, or read-modify-written on a concurrent code path"
    )


@register
class LockOrderCycleRule(_ConcurrencyRule):
    code = "REP013"
    name = "lock-order-cycle"
    summary = (
        "two code paths acquire the same locks in opposite orders -- a "
        "latent deadlock (never baselined)"
    )


@register
class BlockingCallUnderLockRule(_ConcurrencyRule):
    code = "REP014"
    name = "blocking-call-under-lock"
    summary = (
        "fsync/sleep/socket/subprocess/wait or journal append while "
        "holding a lock serialises every contending thread behind I/O"
    )


@register
class SignalHandlerSafetyRule(_ConcurrencyRule):
    code = "REP015"
    name = "non-signal-safe-handler"
    summary = (
        "registered signal handler does more than set a flag/Event or "
        "os.write -- unsafe when it interrupts arbitrary bytecode"
    )
