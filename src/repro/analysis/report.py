"""Rendering: human output for terminals, ``--json`` for machines.

The JSON document is a stable schema (``version`` bumps on breaking
changes) so CI and editors can consume it:

.. code-block:: json

    {
      "version": 1,
      "files_analyzed": 103,
      "violations": [{"path", "line", "col", "rule", "message", "snippet"}],
      "counts": {"fresh": 2, "suppressed": 1, "baselined": 4, "stale_baseline": 0},
      "by_rule": {"REP002": 2},
      "rules": [{"code", "name", "summary"}],
      "concurrency": {"locks", "lock_order": {"edges", "cycles", "acyclic"},
                      "thread_roots"}
    }

``concurrency`` carries the cross-module pass's lock-order graph and
thread roots (``null`` when the rule selection excluded REP012-REP015);
it is additive, so the schema version stays 1.

Exit codes are decided here too: 0 clean, 1 any fresh violation or
stale baseline entry, 2 usage/internal error (raised as
:class:`~repro.errors.ReproError` and mapped by the CLI).
"""

from __future__ import annotations

import json
from collections import Counter

from repro.analysis.baseline import BaselineMatch
from repro.analysis.engine import AnalysisReport
from repro.analysis.registry import all_rules

JSON_SCHEMA_VERSION = 1

EXIT_CLEAN = 0
EXIT_VIOLATIONS = 1
EXIT_ERROR = 2


def exit_code(match: BaselineMatch, report: AnalysisReport) -> int:
    """The stable exit code for a finished run."""
    if match.fresh or match.stale_entries or report.errors:
        return EXIT_VIOLATIONS
    return EXIT_CLEAN


def render_human(report: AnalysisReport, match: BaselineMatch) -> str:
    """One finding per line, then a one-line summary."""
    lines: list[str] = []
    for violation in match.fresh:
        lines.append(violation.describe())
        if violation.snippet:
            lines.append(f"    {violation.snippet}")
    for file_report in report.errors:
        if not any(v.rule == "REP000" for v in file_report.violations):
            lines.append(f"{file_report.path}: error: {file_report.error}")
    for entry in match.stale_entries:
        lines.append(
            f"{entry['path']}: stale baseline entry for {entry['rule']} "
            f"({entry.get('snippet', '')!r} no longer found) -- "
            "regenerate with --write-baseline"
        )
    by_rule = Counter(violation.rule for violation in match.fresh)
    summary = (
        f"{len(match.fresh)} violation(s) in {len(report.files)} file(s)"
        if match.fresh
        else f"clean: {len(report.files)} file(s) analysed"
    )
    details = []
    if by_rule:
        details.append(
            ", ".join(f"{code}={count}" for code, count in sorted(by_rule.items()))
        )
    if report.suppressed:
        details.append(f"{report.suppressed} suppressed by noqa")
    if match.baselined:
        details.append(f"{len(match.baselined)} baselined")
    if match.stale_entries:
        details.append(f"{len(match.stale_entries)} stale baseline entr(y/ies)")
    if details:
        summary += f" [{'; '.join(details)}]"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: AnalysisReport, match: BaselineMatch) -> str:
    """The machine-readable document (sorted keys, trailing newline)."""
    by_rule = Counter(violation.rule for violation in match.fresh)
    document = {
        "version": JSON_SCHEMA_VERSION,
        "files_analyzed": len(report.files),
        "violations": [violation.to_dict() for violation in match.fresh],
        "baselined": [violation.to_dict() for violation in match.baselined],
        "stale_baseline": match.stale_entries,
        "errors": [
            {"path": file_report.path, "error": file_report.error}
            for file_report in report.errors
        ],
        "counts": {
            "fresh": len(match.fresh),
            "suppressed": report.suppressed,
            "baselined": len(match.baselined),
            "stale_baseline": len(match.stale_entries),
        },
        "by_rule": dict(sorted(by_rule.items())),
        "rules": [
            {
                "code": code,
                "name": rule_class.name,
                "summary": rule_class.summary,
            }
            for code, rule_class in sorted(all_rules().items())
        ],
        "concurrency": report.concurrency,
        "exit_code": exit_code(match, report),
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
