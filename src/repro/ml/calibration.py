"""Probability calibration: Platt scaling and isotonic regression.

LEAPME trains on 2:1 negative-sampled pairs but is evaluated on the full
candidate distribution where negatives outnumber positives ~25:1, so its
raw softmax scores are systematically over-confident about the positive
class.  Calibrating the scores on a held-out slice of the training pairs
restores meaningful probabilities (and therefore a meaningful 0.5
threshold).  Two standard calibrators are provided:

* :class:`PlattCalibrator` -- fits a logistic curve ``sigmoid(a*s + b)``
  to (score, label) pairs; smooth, robust with little data.
* :class:`IsotonicCalibrator` -- pool-adjacent-violators (PAVA) fit of a
  monotone step function; non-parametric, needs more data.

Both also support *prior correction*: mapping probabilities learned under
a training positive-rate to a deployment positive-rate in closed form.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DimensionError, NotFittedError


def _validate(scores: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels).astype(np.float64)
    if scores.shape != labels.shape or scores.ndim != 1:
        raise DimensionError(
            f"need matching 1-D arrays, got {scores.shape} and {labels.shape}"
        )
    if len(scores) == 0:
        raise ConfigurationError("cannot calibrate on empty data")
    return scores, labels


class PlattCalibrator:
    """Logistic (Platt, 1999) calibration of similarity scores."""

    def __init__(self, max_iter: int = 200, learning_rate: float = 1.0) -> None:
        self.max_iter = max_iter
        self.learning_rate = learning_rate
        self.a_: float | None = None
        self.b_: float | None = None

    def fit(self, scores: np.ndarray, labels: np.ndarray) -> "PlattCalibrator":
        """Fit the sigmoid with Platt's label smoothing."""
        scores, labels = _validate(scores, labels)
        n_pos = labels.sum()
        n_neg = len(labels) - n_pos
        # Platt's smoothed targets avoid saturation at 0/1.
        target_pos = (n_pos + 1.0) / (n_pos + 2.0)
        target_neg = 1.0 / (n_neg + 2.0)
        targets = np.where(labels > 0.5, target_pos, target_neg)
        a, b = 1.0, 0.0
        for _ in range(self.max_iter):
            logits = a * scores + b
            probs = 1.0 / (1.0 + np.exp(-np.clip(logits, -30, 30)))
            error = probs - targets
            grad_a = float((error * scores).mean())
            grad_b = float(error.mean())
            a -= self.learning_rate * grad_a
            b -= self.learning_rate * grad_b
        self.a_, self.b_ = a, b
        return self

    def transform(self, scores: np.ndarray) -> np.ndarray:
        """Map raw scores to calibrated probabilities."""
        if self.a_ is None or self.b_ is None:
            raise NotFittedError("PlattCalibrator is not fitted")
        logits = self.a_ * np.asarray(scores, dtype=np.float64) + self.b_
        return 1.0 / (1.0 + np.exp(-np.clip(logits, -30, 30)))

    def fit_transform(self, scores: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Fit then transform the same scores."""
        return self.fit(scores, labels).transform(scores)


class IsotonicCalibrator:
    """Monotone calibration via pool-adjacent-violators (PAVA)."""

    def __init__(self) -> None:
        self.thresholds_: np.ndarray | None = None
        self.values_: np.ndarray | None = None

    def fit(self, scores: np.ndarray, labels: np.ndarray) -> "IsotonicCalibrator":
        """Fit the monotone step function minimising squared error."""
        scores, labels = _validate(scores, labels)
        order = np.argsort(scores, kind="stable")
        sorted_scores = scores[order]
        sorted_labels = labels[order]
        # PAVA with blocks of (value, weight, start-score).
        block_values: list[float] = []
        block_weights: list[float] = []
        block_scores: list[float] = []
        for score, label in zip(sorted_scores, sorted_labels):
            block_values.append(float(label))
            block_weights.append(1.0)
            block_scores.append(float(score))
            while (
                len(block_values) >= 2 and block_values[-2] >= block_values[-1]
            ):
                merged_weight = block_weights[-2] + block_weights[-1]
                merged_value = (
                    block_values[-2] * block_weights[-2]
                    + block_values[-1] * block_weights[-1]
                ) / merged_weight
                block_scores[-2] = block_scores[-2]
                block_values[-2] = merged_value
                block_weights[-2] = merged_weight
                del block_values[-1], block_weights[-1], block_scores[-1]
        self.thresholds_ = np.array(block_scores)
        self.values_ = np.array(block_values)
        return self

    def transform(self, scores: np.ndarray) -> np.ndarray:
        """Map raw scores to calibrated probabilities (step interpolation)."""
        if self.thresholds_ is None or self.values_ is None:
            raise NotFittedError("IsotonicCalibrator is not fitted")
        scores = np.asarray(scores, dtype=np.float64)
        indices = np.searchsorted(self.thresholds_, scores, side="right") - 1
        indices = np.clip(indices, 0, len(self.values_) - 1)
        return self.values_[indices]

    def fit_transform(self, scores: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Fit then transform the same scores."""
        return self.fit(scores, labels).transform(scores)


def prior_correction(
    probabilities: np.ndarray,
    train_positive_rate: float,
    deploy_positive_rate: float,
) -> np.ndarray:
    """Re-weight probabilities learned under a different class prior.

    The closed-form correction (Elkan, 2001): with ``p`` learned at
    training prior ``pi_t`` and deployment prior ``pi_d``, the corrected
    probability is ``r*p / (r*p + s*(1-p))`` with ``r = pi_d/pi_t`` and
    ``s = (1-pi_d)/(1-pi_t)``.  This is exactly what LEAPME's 2:1
    training vs skewed-test mismatch calls for.
    """
    for rate, label in (
        (train_positive_rate, "train_positive_rate"),
        (deploy_positive_rate, "deploy_positive_rate"),
    ):
        if not 0.0 < rate < 1.0:
            raise ConfigurationError(f"{label} must be in (0, 1), got {rate}")
    probabilities = np.clip(np.asarray(probabilities, dtype=np.float64), 0.0, 1.0)
    ratio_pos = deploy_positive_rate / train_positive_rate
    ratio_neg = (1.0 - deploy_positive_rate) / (1.0 - train_positive_rate)
    numerator = ratio_pos * probabilities
    denominator = numerator + ratio_neg * (1.0 - probabilities)
    with np.errstate(invalid="ignore"):
        corrected = np.where(denominator > 0, numerator / denominator, 0.0)
    return corrected
