"""Gaussian naive Bayes."""

from __future__ import annotations

import numpy as np

from repro.ml.base import Classifier


class GaussianNaiveBayes(Classifier):
    """Naive Bayes with per-class diagonal Gaussian likelihoods.

    Variances are smoothed by ``var_smoothing`` times the largest feature
    variance, the same stabilisation scikit-learn applies.
    """

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        super().__init__()
        self.var_smoothing = var_smoothing
        self._means: np.ndarray | None = None
        self._variances: np.ndarray | None = None
        self._log_priors: np.ndarray | None = None

    def _fit(self, inputs: np.ndarray, labels: np.ndarray) -> None:
        n_classes = int(labels.max()) + 1
        n_features = inputs.shape[1]
        means = np.zeros((n_classes, n_features))
        variances = np.zeros((n_classes, n_features))
        priors = np.zeros(n_classes)
        epsilon = self.var_smoothing * float(inputs.var(axis=0).max() or 1.0)
        for cls in range(n_classes):
            members = inputs[labels == cls]
            priors[cls] = len(members) / len(inputs)
            means[cls] = members.mean(axis=0)
            variances[cls] = members.var(axis=0) + epsilon
        self._means = means
        self._variances = variances
        self._log_priors = np.log(np.clip(priors, 1e-12, None))

    def _predict_proba(self, inputs: np.ndarray) -> np.ndarray:
        n_classes = len(self._log_priors)
        log_likelihood = np.zeros((len(inputs), n_classes))
        for cls in range(n_classes):
            mean = self._means[cls]
            var = self._variances[cls]
            log_likelihood[:, cls] = (
                -0.5 * np.sum(np.log(2.0 * np.pi * var))
                - 0.5 * np.sum((inputs - mean) ** 2 / var, axis=1)
                + self._log_priors[cls]
            )
        # Log-sum-exp normalisation.
        shifted = log_likelihood - log_likelihood.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)
