"""k-nearest-neighbour classifier (Euclidean, optional distance weighting)."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.base import Classifier


class KNeighborsClassifier(Classifier):
    """Brute-force k-NN; fine for the pair counts in this benchmark."""

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform") -> None:
        super().__init__()
        if n_neighbors < 1:
            raise ConfigurationError(f"n_neighbors must be >= 1, got {n_neighbors}")
        if weights not in ("uniform", "distance"):
            raise ConfigurationError(
                f"weights must be 'uniform' or 'distance', got {weights!r}"
            )
        self.n_neighbors = n_neighbors
        self.weights = weights
        self._train_inputs: np.ndarray | None = None
        self._train_labels: np.ndarray | None = None

    def _fit(self, inputs: np.ndarray, labels: np.ndarray) -> None:
        self._train_inputs = inputs
        self._train_labels = labels

    def _predict_proba(self, inputs: np.ndarray) -> np.ndarray:
        train = self._train_inputs
        labels = self._train_labels
        k = min(self.n_neighbors, len(train))
        n_classes = int(labels.max()) + 1
        probs = np.zeros((len(inputs), n_classes))
        # Chunk queries to bound the distance-matrix memory.
        chunk = max(1, 4_000_000 // max(1, len(train)))
        for start in range(0, len(inputs), chunk):
            block = inputs[start : start + chunk]
            # Squared Euclidean distances via the expansion trick.
            d2 = (
                (block * block).sum(axis=1)[:, None]
                - 2.0 * block @ train.T
                + (train * train).sum(axis=1)[None, :]
            )
            np.maximum(d2, 0.0, out=d2)
            neighbor_idx = np.argpartition(d2, k - 1, axis=1)[:, :k]
            for row, neighbors in enumerate(neighbor_idx):
                dists = np.sqrt(d2[row, neighbors])
                if self.weights == "distance":
                    vote_weights = 1.0 / np.maximum(dists, 1e-12)
                else:
                    vote_weights = np.ones(k)
                votes = np.bincount(
                    labels[neighbors], weights=vote_weights, minlength=n_classes
                )
                probs[start + row] = votes / votes.sum()
        return probs
