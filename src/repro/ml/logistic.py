"""Multinomial logistic regression trained with full-batch gradient descent."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.base import Classifier


class LogisticRegression(Classifier):
    """Softmax regression with L2 regularisation.

    Trained with plain gradient descent plus a simple backtracking step;
    adequate for the small, dense feature matrices of the baselines.
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        max_iter: int = 300,
        l2: float = 1e-4,
        tol: float = 1e-6,
    ) -> None:
        super().__init__()
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {learning_rate}")
        if max_iter < 1:
            raise ConfigurationError(f"max_iter must be >= 1, got {max_iter}")
        if l2 < 0:
            raise ConfigurationError("l2 must be non-negative")
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.l2 = l2
        self.tol = tol
        self.weights_: np.ndarray | None = None
        self.bias_: np.ndarray | None = None
        self.n_iter_: int = 0

    @staticmethod
    def _softmax(logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def _fit(self, inputs: np.ndarray, labels: np.ndarray) -> None:
        n, n_features = inputs.shape
        n_classes = int(labels.max()) + 1
        weights = np.zeros((n_features, n_classes))
        bias = np.zeros(n_classes)
        onehot = np.zeros((n, n_classes))
        onehot[np.arange(n), labels] = 1.0
        previous_loss = np.inf
        for iteration in range(self.max_iter):
            probs = self._softmax(inputs @ weights + bias)
            error = (probs - onehot) / n
            grad_weights = inputs.T @ error + self.l2 * weights
            grad_bias = error.sum(axis=0)
            weights -= self.learning_rate * grad_weights
            bias -= self.learning_rate * grad_bias
            picked = probs[np.arange(n), labels]
            loss = float(-np.log(np.clip(picked, 1e-12, None)).mean())
            self.n_iter_ = iteration + 1
            if abs(previous_loss - loss) < self.tol:
                break
            previous_loss = loss
        self.weights_ = weights
        self.bias_ = bias

    def _predict_proba(self, inputs: np.ndarray) -> np.ndarray:
        return self._softmax(inputs @ self.weights_ + self.bias_)
