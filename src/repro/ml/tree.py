"""CART decision tree with Gini impurity.

The workhorse of the Nezhadi baseline.  Split search is vectorised with a
sorted cumulative-count sweep per feature, so the tree stays usable on the
tens of thousands of property pairs produced by the camera dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.base import Classifier


@dataclass
class _Node:
    """A tree node; leaves carry class probabilities, splits carry children."""

    probabilities: np.ndarray
    feature: int = -1
    threshold: float = 0.0
    left: "._Node | None" = None
    right: "._Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini_from_counts(counts: np.ndarray, totals: np.ndarray) -> np.ndarray:
    """Gini impurity for rows of class counts with given row totals."""
    with np.errstate(divide="ignore", invalid="ignore"):
        fractions = counts / totals[:, None]
        gini = 1.0 - np.nansum(fractions * fractions, axis=1)
    gini[totals == 0] = 0.0
    return gini


class DecisionTreeClassifier(Classifier):
    """CART-style binary-split decision tree.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (None for unbounded).
    min_samples_split:
        Minimum samples a node must hold before attempting a split.
    min_impurity_decrease:
        Splits that reduce impurity by less than this are rejected.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_impurity_decrease: float = 0.0,
    ) -> None:
        super().__init__()
        if max_depth is not None and max_depth < 1:
            raise ConfigurationError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_split < 2:
            raise ConfigurationError(
                f"min_samples_split must be >= 2, got {min_samples_split}"
            )
        if min_impurity_decrease < 0:
            raise ConfigurationError("min_impurity_decrease must be non-negative")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_impurity_decrease = min_impurity_decrease
        self._root: _Node | None = None
        self._n_encoded_classes = 0

    # -- fitting -----------------------------------------------------------
    def _fit(self, inputs: np.ndarray, labels: np.ndarray) -> None:
        self._n_encoded_classes = int(labels.max()) + 1
        sample_weight = np.ones(len(labels))
        self._root = self._grow(inputs, labels, sample_weight, depth=0)

    def fit_weighted(
        self,
        inputs: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray,
    ) -> "DecisionTreeClassifier":
        """Fit with per-sample weights (used by AdaBoost).

        Labels must already be contiguous integers starting at 0.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        sample_weight = np.asarray(sample_weight, dtype=np.float64)
        self.classes_ = np.unique(labels)
        self._n_encoded_classes = int(labels.max()) + 1
        # Re-encode so probabilities index into classes_ positions.
        encoder = {cls: i for i, cls in enumerate(self.classes_)}
        encoded = np.array([encoder[label] for label in labels], dtype=np.int64)
        self._n_encoded_classes = len(self.classes_)
        self._root = self._grow(inputs, encoded, sample_weight, depth=0)
        return self

    def _leaf(self, labels: np.ndarray, weights: np.ndarray) -> _Node:
        counts = np.bincount(labels, weights=weights, minlength=self._n_encoded_classes)
        total = counts.sum()
        probs = counts / total if total > 0 else np.full_like(counts, 1.0 / len(counts))
        return _Node(probabilities=probs)

    def _grow(
        self,
        inputs: np.ndarray,
        labels: np.ndarray,
        weights: np.ndarray,
        depth: int,
    ) -> _Node:
        node = self._leaf(labels, weights)
        if (
            len(labels) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.all(labels == labels[0])
        ):
            return node
        split = self._best_split(inputs, labels, weights)
        if split is None:
            return node
        feature, threshold = split
        mask = inputs[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(inputs[mask], labels[mask], weights[mask], depth + 1)
        node.right = self._grow(inputs[~mask], labels[~mask], weights[~mask], depth + 1)
        return node

    def _best_split(
        self,
        inputs: np.ndarray,
        labels: np.ndarray,
        weights: np.ndarray,
    ) -> tuple[int, float] | None:
        """Return the (feature, threshold) with the largest impurity decrease."""
        n, n_features = inputs.shape
        total_weight = weights.sum()
        parent_counts = np.bincount(labels, weights=weights, minlength=self._n_encoded_classes)
        parent_gini = 1.0 - np.sum((parent_counts / total_weight) ** 2)
        best_gain = self.min_impurity_decrease
        best: tuple[int, float] | None = None
        onehot = np.zeros((n, self._n_encoded_classes))
        onehot[np.arange(n), labels] = weights
        for feature in range(n_features):
            column = inputs[:, feature]
            order = np.argsort(column, kind="stable")
            sorted_values = column[order]
            # Cumulative weighted class counts left of each cut position.
            left_counts = np.cumsum(onehot[order], axis=0)
            left_totals = left_counts.sum(axis=1)
            right_counts = left_counts[-1] - left_counts
            right_totals = left_totals[-1] - left_totals
            # A cut is valid only between distinct consecutive values.
            valid = sorted_values[:-1] < sorted_values[1:]
            if not valid.any():
                continue
            gini_left = _gini_from_counts(left_counts[:-1], left_totals[:-1])
            gini_right = _gini_from_counts(right_counts[:-1], right_totals[:-1])
            weighted = (
                left_totals[:-1] * gini_left + right_totals[:-1] * gini_right
            ) / total_weight
            gains = parent_gini - weighted
            gains[~valid] = -np.inf
            cut = int(np.argmax(gains))
            if gains[cut] > best_gain:
                best_gain = float(gains[cut])
                threshold = (sorted_values[cut] + sorted_values[cut + 1]) / 2.0
                best = (feature, float(threshold))
        return best

    # -- prediction ---------------------------------------------------------
    def _predict_proba(self, inputs: np.ndarray) -> np.ndarray:
        probs = np.empty((len(inputs), self._n_encoded_classes))
        for i, row in enumerate(inputs):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            probs[i] = node.probabilities
        return probs

    def depth(self) -> int:
        """Actual depth of the fitted tree (0 for a single leaf)."""

        def _depth(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(self._root)

    def node_count(self) -> int:
        """Total number of nodes in the fitted tree."""

        def _count(node: _Node | None) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return 1 + _count(node.left) + _count(node.right)

        return _count(self._root)
