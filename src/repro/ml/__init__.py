"""Classical machine-learning substrate (scikit-learn substitute).

The Nezhadi et al. baseline aggregates string-similarity features with
classical supervised learners.  This package provides from-scratch numpy
implementations of the classifier families that work evaluated (decision
trees, boosting, k-NN, naive Bayes) plus logistic regression and feature
scaling:

* :mod:`repro.ml.base` -- the estimator protocol.
* :mod:`repro.ml.scaling` -- standard (z-score) scaler.
* :mod:`repro.ml.tree` -- CART decision tree with Gini impurity.
* :mod:`repro.ml.adaboost` -- AdaBoost (SAMME) over depth-limited trees.
* :mod:`repro.ml.knn` -- k-nearest-neighbour classifier.
* :mod:`repro.ml.naive_bayes` -- Gaussian naive Bayes.
* :mod:`repro.ml.logistic` -- binary / multinomial logistic regression.
* :mod:`repro.ml.calibration` -- Platt / isotonic score calibration and
  class-prior correction.
"""

from repro.ml.adaboost import AdaBoostClassifier
from repro.ml.base import Classifier
from repro.ml.calibration import IsotonicCalibrator, PlattCalibrator, prior_correction
from repro.ml.knn import KNeighborsClassifier
from repro.ml.logistic import LogisticRegression
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.scaling import StandardScaler
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "Classifier",
    "PlattCalibrator",
    "IsotonicCalibrator",
    "prior_correction",
    "StandardScaler",
    "DecisionTreeClassifier",
    "AdaBoostClassifier",
    "KNeighborsClassifier",
    "GaussianNaiveBayes",
    "LogisticRegression",
]
