"""The estimator protocol shared by all classical classifiers."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, NotFittedError


class Classifier:
    """Base class for supervised classifiers.

    Subclasses implement :meth:`_fit` and :meth:`_predict_proba`; this base
    handles input validation, label encoding (arbitrary label values are
    mapped to contiguous class indices) and the fitted-state checks.
    """

    def __init__(self) -> None:
        self.classes_: np.ndarray | None = None

    # -- template methods -------------------------------------------------
    def _fit(self, inputs: np.ndarray, encoded_labels: np.ndarray) -> None:
        raise NotImplementedError

    def _predict_proba(self, inputs: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- public API --------------------------------------------------------
    def fit(self, inputs: np.ndarray, labels: np.ndarray) -> "Classifier":
        """Train the classifier; returns ``self`` for chaining."""
        inputs = np.asarray(inputs, dtype=np.float64)
        labels = np.asarray(labels)
        if inputs.ndim != 2:
            raise ConfigurationError(f"inputs must be 2-D, got shape {inputs.shape}")
        if len(inputs) != len(labels):
            raise ConfigurationError(
                f"inputs ({len(inputs)}) and labels ({len(labels)}) disagree"
            )
        if len(inputs) == 0:
            raise ConfigurationError("cannot fit on an empty training set")
        self.classes_, encoded = np.unique(labels, return_inverse=True)
        self._fit(inputs, encoded.astype(np.int64))
        return self

    def predict_proba(self, inputs: np.ndarray) -> np.ndarray:
        """Per-class probabilities ``(n, n_classes)`` in ``classes_`` order."""
        if self.classes_ is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted")
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 2:
            raise ConfigurationError(f"inputs must be 2-D, got shape {inputs.shape}")
        probs = self._predict_proba(inputs)
        return probs

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Hard predictions in the original label space."""
        probs = self.predict_proba(inputs)
        return self.classes_[probs.argmax(axis=1)]

    @property
    def n_classes(self) -> int:
        """Number of distinct classes seen at fit time."""
        if self.classes_ is None:
            raise NotFittedError(f"{type(self).__name__} is not fitted")
        return len(self.classes_)
