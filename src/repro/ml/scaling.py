"""Feature scaling."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, NotFittedError


class StandardScaler:
    """Z-score scaler; constant features are centred and left unscaled."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, inputs: np.ndarray) -> "StandardScaler":
        """Learn per-column mean and standard deviation."""
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 2:
            raise ConfigurationError(f"inputs must be 2-D, got shape {inputs.shape}")
        if len(inputs) == 0:
            raise ConfigurationError("cannot fit a scaler on an empty matrix")
        self.mean_ = inputs.mean(axis=0)
        scale = inputs.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, inputs: np.ndarray) -> np.ndarray:
        """Apply the learned scaling."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler is not fitted")
        inputs = np.asarray(inputs, dtype=np.float64)
        # Subtract into a fresh array, then divide in place: one output
        # allocation instead of two (these matrices reach tens of MB).
        scaled = np.subtract(inputs, self.mean_)
        scaled /= self.scale_
        return scaled

    def fit_transform(self, inputs: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(inputs).transform(inputs)

    def inverse_transform(self, inputs: np.ndarray) -> np.ndarray:
        """Undo :meth:`transform`."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler is not fitted")
        return np.asarray(inputs, dtype=np.float64) * self.scale_ + self.mean_
