"""AdaBoost (SAMME) over depth-limited decision trees."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.base import Classifier
from repro.ml.tree import DecisionTreeClassifier


class AdaBoostClassifier(Classifier):
    """Multi-class AdaBoost with the SAMME weight update.

    Weak learners are shallow CART trees (stumps by default), re-fitted on
    re-weighted samples each round.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int = 1,
        learning_rate: float = 1.0,
    ) -> None:
        super().__init__()
        if n_estimators < 1:
            raise ConfigurationError(f"n_estimators must be >= 1, got {n_estimators}")
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {learning_rate}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.estimators_: list[DecisionTreeClassifier] = []
        self.estimator_weights_: list[float] = []

    def _fit(self, inputs: np.ndarray, labels: np.ndarray) -> None:
        n = len(labels)
        n_classes = int(labels.max()) + 1
        weights = np.full(n, 1.0 / n)
        self.estimators_ = []
        self.estimator_weights_ = []
        for _ in range(self.n_estimators):
            stump = DecisionTreeClassifier(max_depth=self.max_depth)
            stump.fit_weighted(inputs, labels, weights)
            predictions = stump.predict(inputs)
            incorrect = predictions != labels
            error = float(np.sum(weights[incorrect]))
            if error <= 0.0:
                # Perfect learner: give it a large but finite weight and stop.
                self.estimators_.append(stump)
                self.estimator_weights_.append(10.0)
                break
            if error >= 1.0 - 1.0 / n_classes:
                # Worse than chance; SAMME cannot use it.
                break
            alpha = self.learning_rate * (
                np.log((1.0 - error) / error) + np.log(n_classes - 1.0)
            )
            self.estimators_.append(stump)
            self.estimator_weights_.append(float(alpha))
            weights *= np.exp(alpha * incorrect)
            weights /= weights.sum()
        if not self.estimators_:
            # Degenerate data: fall back to a single stump so predict works.
            stump = DecisionTreeClassifier(max_depth=self.max_depth)
            stump.fit_weighted(inputs, labels, np.full(n, 1.0 / n))
            self.estimators_.append(stump)
            self.estimator_weights_.append(1.0)
        self._n_encoded_classes = n_classes

    def _predict_proba(self, inputs: np.ndarray) -> np.ndarray:
        scores = np.zeros((len(inputs), self._n_encoded_classes))
        for stump, alpha in zip(self.estimators_, self.estimator_weights_):
            votes = stump.predict(inputs)
            for cls in range(self._n_encoded_classes):
                scores[:, cls] += alpha * (votes == cls)
        total = scores.sum(axis=1, keepdims=True)
        total[total == 0.0] = 1.0
        return scores / total

    @property
    def n_fitted_estimators(self) -> int:
        """How many weak learners the boosting loop actually kept."""
        return len(self.estimators_)
