"""Registry journal: the crash-safe record of a matching service's tenants.

Every tenant a :class:`~repro.serve.registry.TenantRegistry` manages
moves through a small lifecycle::

    created -> bootstrapped -> source-added* -> removed
                    |
                    +--> quarantined

Each transition is one fsynced JSONL append
(:func:`repro.ioutils.fsync_append_line`), exactly like the run and
ingestion journals, so a server killed at any instant leaves a journal
from which a warm restart rebuilds the same tenant set: ``created``
records carry the full bootstrap spec (system, input paths, seed,
threshold) plus the content fingerprint of the inputs, and
``source-added`` records carry the reload order and file fingerprints.
Replaying those records through the same deterministic bootstrap and
delta paths lands every tenant on state whose match responses are
byte-identical to a cold rebuild -- the acceptance invariant the serve
chaos suite pins with SIGKILL at every journaled stage.

Format
------
The first line is a header record::

    {"type": "registry-journal", "version": 1}

Every subsequent line describes one transition of one tenant::

    {"type": "tenant", "tenant": "shop-a", "status": "source-added",
     "file": "feeds/extra.csv", "fingerprint": "9f2c...", "order": 2,
     "properties": 7, "pairs": 21}

``quarantined`` records carry a structured ``reason`` plus the final
error and the consecutive-failure count that tripped the breaker.
Records for the same tenant supersede each other (latest status wins),
and the torn-tail reading machinery is shared with
:class:`repro.evaluation.checkpoint.RunJournal`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import JournalError
from repro.evaluation.checkpoint import read_journal_records
from repro.ioutils import fsync_append_line

REGISTRY_JOURNAL_TYPE = "registry-journal"
_REGISTRY_JOURNAL_VERSION = 1

TENANT_CREATED = "created"
TENANT_BOOTSTRAPPED = "bootstrapped"
TENANT_SOURCE_ADDED = "source-added"
TENANT_QUARANTINED = "quarantined"
TENANT_REMOVED = "removed"

#: Lifecycle order, used to render describe() totals deterministically.
TENANT_STATUS_ORDER = (
    TENANT_CREATED,
    TENANT_BOOTSTRAPPED,
    TENANT_SOURCE_ADDED,
    TENANT_QUARANTINED,
    TENANT_REMOVED,
)

#: Structured ``reason`` values of ``quarantined`` records.
REASON_CIRCUIT_OPEN = "circuit-open"
REASON_POISON_TENANT = "poison-tenant"
TENANT_QUARANTINE_REASONS = frozenset({REASON_CIRCUIT_OPEN, REASON_POISON_TENANT})


@dataclass(frozen=True)
class TenantEvent:
    """One tenant's transition as recorded in (or read from) a journal."""

    tenant: str
    status: str
    spec: dict | None = None
    fingerprint: str | None = None
    file: str | None = None
    order: int | None = None
    properties: int | None = None
    pairs: int | None = None
    reason: str | None = None
    error_type: str | None = None
    error: str | None = None
    failures: int | None = None

    def to_record(self) -> dict:
        """JSON-serialisable journal line."""
        record: dict = {
            "type": "tenant",
            "tenant": self.tenant,
            "status": self.status,
        }
        for name in (
            "spec", "fingerprint", "file", "order", "properties",
            "pairs", "reason", "error_type", "error", "failures",
        ):
            value = getattr(self, name)
            if value is not None:
                record[name] = value
        return record

    @classmethod
    def from_record(cls, record: dict) -> "TenantEvent":
        """Inverse of :meth:`to_record`."""
        try:
            spec = record.get("spec")
            if spec is not None and not isinstance(spec, dict):
                raise TypeError("spec must be an object")
            return cls(
                tenant=str(record["tenant"]),
                status=str(record["status"]),
                spec=spec,
                fingerprint=record.get("fingerprint"),
                file=record.get("file"),
                order=_opt_int(record.get("order")),
                properties=_opt_int(record.get("properties")),
                pairs=_opt_int(record.get("pairs")),
                reason=record.get("reason"),
                error_type=record.get("error_type"),
                error=record.get("error"),
                failures=_opt_int(record.get("failures")),
            )
        except (KeyError, TypeError, ValueError) as problem:
            raise JournalError(
                f"malformed registry-journal record: {problem}"
            ) from None


def _opt_int(value) -> int | None:
    return None if value is None else int(value)


class RegistryJournal:
    """Append-only JSONL journal of tenant lifecycle transitions.

    One instance wraps one file path; the file is created (with its
    header line) on the first append.  A missing journal reads as an
    empty one, so a fresh server and a warm restart construct the
    registry identically.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    # -- writing -------------------------------------------------------------
    def _ensure_header(self) -> None:
        if not self.path.exists() or self.path.stat().st_size == 0:
            fsync_append_line(
                self.path,
                json.dumps(
                    {
                        "type": REGISTRY_JOURNAL_TYPE,
                        "version": _REGISTRY_JOURNAL_VERSION,
                    }
                ),
            )

    def append(self, event: TenantEvent) -> None:
        """Durably record one transition (a single fsynced line)."""
        self._ensure_header()
        fsync_append_line(self.path, json.dumps(event.to_record(), sort_keys=True))

    def record_created(self, tenant: str, spec: dict, fingerprint: str | None) -> None:
        """A tenant was registered; the spec is everything a rebuild needs."""
        self.append(
            TenantEvent(
                tenant, TENANT_CREATED, spec=spec, fingerprint=fingerprint
            )
        )

    def record_bootstrapped(self, tenant: str, properties: int, pairs: int) -> None:
        """The tenant's warm store and fitted bundle are built."""
        self.append(
            TenantEvent(
                tenant, TENANT_BOOTSTRAPPED, properties=properties, pairs=pairs
            )
        )

    def record_source_added(
        self,
        tenant: str,
        file: str,
        fingerprint: str,
        order: int,
        properties: int,
        pairs: int,
    ) -> None:
        """A reload landed: the tenant's state now includes ``file``."""
        self.append(
            TenantEvent(
                tenant,
                TENANT_SOURCE_ADDED,
                file=file,
                fingerprint=fingerprint,
                order=order,
                properties=properties,
                pairs=pairs,
            )
        )

    def record_quarantined(
        self, tenant: str, reason: str, error: BaseException, failures: int
    ) -> None:
        """The tenant's breaker opened; healthy tenants keep serving."""
        self.append(
            TenantEvent(
                tenant,
                TENANT_QUARANTINED,
                reason=reason,
                error_type=type(error).__name__,
                error=str(error),
                failures=failures,
            )
        )

    def record_removed(self, tenant: str) -> None:
        """The tenant was deleted; a rebuild skips it entirely."""
        self.append(TenantEvent(tenant, TENANT_REMOVED))

    # -- reading -------------------------------------------------------------
    def events(self) -> list[TenantEvent]:
        """Every tenant transition, in append order (torn tail dropped)."""
        records = read_journal_records(
            self.path,
            header_type=REGISTRY_JOURNAL_TYPE,
            version=_REGISTRY_JOURNAL_VERSION,
            kind="a registry journal",
        )
        return [
            TenantEvent.from_record(record)
            for record in records
            if record.get("type") == "tenant"
        ]

    def latest(self) -> dict[str, TenantEvent]:
        """Latest event per tenant, in first-seen order."""
        latest: dict[str, TenantEvent] = {}
        for event in self.events():
            latest[event.tenant] = event
        return latest

    def replay_plan(self) -> list[tuple[TenantEvent, list[TenantEvent]]]:
        """``(created, [source-added...])`` per live tenant, in creation order.

        The warm-restart recipe: bootstrap each tenant from its
        ``created`` spec, then re-apply its ``source-added`` records in
        reload order.  Tenants whose latest status is ``removed`` are
        dropped; quarantined tenants are returned (their latest event
        says so) so the registry can pin the quarantine without
        rebuilding state.
        """
        events = self.events()
        latest = self.latest()
        created: dict[str, TenantEvent] = {}
        additions: dict[str, list[TenantEvent]] = {}
        for event in events:
            if event.status == TENANT_CREATED and event.tenant not in created:
                created[event.tenant] = event
            elif event.status == TENANT_SOURCE_ADDED:
                additions.setdefault(event.tenant, []).append(event)
        plan: list[tuple[TenantEvent, list[TenantEvent]]] = []
        for tenant, genesis in created.items():
            if latest[tenant].status == TENANT_REMOVED:
                continue
            ordered = sorted(
                additions.get(tenant, []), key=lambda event: event.order or 0
            )
            plan.append((genesis, ordered))
        return plan

    def quarantined(self) -> dict[str, TenantEvent]:
        """Tenants whose latest status is ``quarantined``."""
        return {
            tenant: event
            for tenant, event in self.latest().items()
            if event.status == TENANT_QUARANTINED
        }

    def describe(self) -> str:
        """Post-mortem summary: per-tenant status, reloads, quarantines.

        One line per tenant with its latest status and counts, then
        aggregate totals, the most recent reload (the highest
        ``source-added`` order across tenants), and one line per
        quarantined tenant naming its structured reason -- the
        registry-journal counterpart of the run/ingest journal
        summaries served by ``repro describe --journal``.
        """
        events = self.events()
        latest = self.latest()
        lines = [f"registry journal {self.path}:"]
        if not latest:
            lines.append("  (empty)")
            return "\n".join(lines)
        counts: dict[str, int] = {}
        sources: dict[str, int] = {}
        last_reload: TenantEvent | None = None
        for event in events:
            if event.status == TENANT_SOURCE_ADDED:
                sources[event.tenant] = sources.get(event.tenant, 0) + 1
                if last_reload is None or (event.order or 0) >= (
                    last_reload.order or 0
                ):
                    last_reload = event
        for tenant, event in latest.items():
            counts[event.status] = counts.get(event.status, 0) + 1
            detail = [f"status={event.status}"]
            if sources.get(tenant):
                detail.append(f"sources_added={sources[tenant]}")
            if event.properties is not None:
                detail.append(f"properties={event.properties}")
            if event.pairs is not None:
                detail.append(f"pairs={event.pairs}")
            if event.reason is not None:
                detail.append(f"reason={event.reason}")
            lines.append(f"  {tenant}: " + ", ".join(detail))
        summary = [
            f"{counts[status]} {status}"
            for status in TENANT_STATUS_ORDER
            if counts.get(status)
        ]
        lines.append(f"  tenants: {len(latest)} ({', '.join(summary)})")
        if last_reload is not None:
            lines.append(
                f"  last reload: {last_reload.tenant} += {last_reload.file} "
                f"(order {last_reload.order}, {last_reload.properties} "
                f"properties, {last_reload.pairs} pairs)"
            )
        for tenant, event in sorted(self.quarantined().items()):
            lines.append(
                f"  quarantined: {tenant}: {event.reason} "
                f"({event.error_type}: {event.error})"
            )
        return "\n".join(lines)
