"""Liveness, readiness and stats payloads for the matching service.

Three probes, deliberately decoupled from the HTTP plumbing so tests
(and future transports) can call them directly:

``healthz``
    Liveness: the process is up and its handler loop responds.  Always
    200 while the server runs; flips to 503 only once drain begins, so
    an orchestrator stops routing to a terminating instance.

``readyz``
    Readiness: gated on the registry having loaded its journal *and*
    every live tenant being warm (bootstrapped or pinned quarantined).
    A warm-restarting server answers 503 here -- while already live --
    until replay lands it back on its pre-crash tenant set.

``statz``
    Operational counters: admission queue depth and shed/expired
    totals, per-tenant status with featurization ``stage_calls``
    (including the ``name_distance.cache_hit`` split from PR 7), and
    quarantine state.  Diagnostics only -- no determinism contract.
"""

from __future__ import annotations

from repro.serve.admission import AdmissionQueue
from repro.serve.registry import TenantRegistry


class ServiceProbes:
    """Probe payload builders over a registry and its admission queue."""

    def __init__(
        self, registry: TenantRegistry, admission: AdmissionQueue
    ) -> None:
        self.registry = registry
        self.admission = admission

    def healthz(self) -> tuple[int, dict]:
        if self.admission.stop_event.is_set():
            return 503, {"status": "draining"}
        return 200, {"status": "ok"}

    def readyz(self) -> tuple[int, dict]:
        if self.admission.stop_event.is_set():
            return 503, {"status": "draining"}
        if not self.registry.loaded:
            return 503, {"status": "loading", "reason": "registry journal replay"}
        if not self.registry.ready():
            return 503, {"status": "warming", "reason": "tenant state building"}
        return 200, {
            "status": "ready",
            "tenants": len(self.registry.tenants()),
        }

    def statz(self) -> tuple[int, dict]:
        return 200, {
            "admission": self.admission.stats(),
            "tenants": self.registry.tenant_summaries(),
        }
