"""Long-lived matching service: tenant registry, admission, HTTP probes.

The request-serving counterpart of the batch (:mod:`repro.evaluation`)
and streaming (:mod:`repro.ingest`) layers, built on the same failure
model: every state transition is journaled before it is visible
(:class:`RegistryJournal`), every wait is bounded and stop-aware, and a
SIGKILLed server warm-restarts into byte-identical responses.
"""

from repro.serve.admission import (
    AdmissionQueue,
    AdmissionShed,
    DeadlineExceeded,
    ServiceStopping,
)
from repro.serve.journal import (
    REGISTRY_JOURNAL_TYPE,
    RegistryJournal,
    TenantEvent,
)
from repro.serve.probes import ServiceProbes
from repro.serve.registry import Tenant, TenantRegistry, TenantSpec, TenantState
from repro.serve.server import MatchingService

__all__ = [
    "AdmissionQueue",
    "AdmissionShed",
    "DeadlineExceeded",
    "ServiceStopping",
    "REGISTRY_JOURNAL_TYPE",
    "RegistryJournal",
    "TenantEvent",
    "ServiceProbes",
    "Tenant",
    "TenantRegistry",
    "TenantSpec",
    "TenantState",
    "MatchingService",
]
