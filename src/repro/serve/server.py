"""The long-lived matching service: stdlib HTTP over the tenant registry.

A thin, deterministic HTTP skin (:class:`http.server.ThreadingHTTPServer`,
no third-party dependencies) over :class:`~repro.serve.registry.TenantRegistry`
and :class:`~repro.serve.admission.AdmissionQueue`:

====================================  =========================================
``GET  /healthz``                     liveness (503 once drain begins)
``GET  /readyz``                      readiness (registry loaded + tenants warm)
``GET  /statz``                       admission + per-tenant counters
``GET  /tenants``                     tenant summaries
``POST /tenants/<id>``                create a tenant (body: spec JSON)
``POST /tenants/<id>/match``          score + threshold all cross-source pairs
``POST /tenants/<id>/predict``        score explicit property pairs
``POST /tenants/<id>/add-source``     graceful copy-on-swap reload
``DELETE /tenants/<id>``              remove a tenant
====================================  =========================================

Request handling is thread-per-connection; the heavy endpoints
(``match``/``predict``) pass through the bounded admission queue first,
so overload sheds deterministically (429 + ``Retry-After``) instead of
queueing unbounded work, and a quarantined tenant answers 503 without
consuming a slot.  Response bodies are ``json.dumps(..., sort_keys=True)``
and the handler emits no ``Date``/``Server`` headers, so a response is a
pure function of registry state -- the property the warm-restart
byte-identity chaos tests pin.

Shutdown is drain-then-exit: SIGINT/SIGTERM set the shared stop event
(liveness flips to draining, admission refuses new work), the acceptor
is shut down, in-flight requests get a bounded grace to finish, and
:class:`~repro.errors.GridInterrupted` carries the signal number so the
CLI exits 128+signum exactly like the batch and follow loops.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import (
    ConfigurationError,
    DataError,
    GridInterrupted,
    ReproError,
    TenantQuarantinedError,
)
from repro.serve.admission import (
    AdmissionQueue,
    AdmissionShed,
    DeadlineExceeded,
    ServiceStopping,
)
from repro.serve.probes import ServiceProbes
from repro.serve.registry import TenantRegistry, TenantSpec

#: Largest accepted request body; anything bigger is a client error,
#: never a buffering liability.
_MAX_BODY_BYTES = 1 << 20

#: How often the stop-event wait loop and serve_forever poll wake up.
_WAIT_SLICE = 0.2


class _Handler(BaseHTTPRequestHandler):
    """One HTTP connection; ``service`` is bound per-server via subclass."""

    service: "MatchingService"
    protocol_version = "HTTP/1.1"
    #: Socket timeout: a stalled client cannot pin a handler thread
    #: forever (REP011: every blocking read is bounded).
    timeout = 30.0

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        # Per-request stderr chatter is diagnostics the probes already
        # serve; keep handler threads quiet and deterministic.
        pass

    def version_string(self) -> str:
        return "repro-serve"

    # -- plumbing ------------------------------------------------------------
    def _send_json(
        self, code: int, payload: dict, *, retry_after: int | None = None
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response_only(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            raise DataError(f"request body over {_MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as problem:
            raise DataError(f"request body is not JSON: {problem}") from None
        if not isinstance(body, dict):
            raise DataError("request body must be a JSON object")
        return body

    def _route(self) -> tuple[str, ...]:
        path = self.path.split("?", 1)[0]
        return tuple(part for part in path.split("/") if part)

    # -- verbs ---------------------------------------------------------------
    def do_GET(self) -> None:
        probes = self.service.probes
        route = self._route()
        if route == ("healthz",):
            self._send_json(*probes.healthz())
        elif route == ("readyz",):
            self._send_json(*probes.readyz())
        elif route == ("statz",):
            self._send_json(*probes.statz())
        elif route == ("tenants",):
            self._send_json(
                200, {"tenants": self.service.registry.tenant_summaries()}
            )
        else:
            self._send_json(404, {"error": "no such endpoint"})

    def do_POST(self) -> None:
        route = self._route()
        if len(route) == 2 and route[0] == "tenants":
            self._create_tenant(route[1])
        elif len(route) == 3 and route[0] == "tenants":
            tenant_id, action = route[1], route[2]
            if action == "match":
                self._matching(tenant_id, lambda body: self.service.registry.match_payload(tenant_id))
            elif action == "predict":
                self._matching(
                    tenant_id,
                    lambda body: self.service.registry.predict_payload(
                        tenant_id, body.get("pairs", [])
                    ),
                )
            elif action == "add-source":
                self._add_source(tenant_id)
            else:
                self._send_json(404, {"error": "no such endpoint"})
        else:
            self._send_json(404, {"error": "no such endpoint"})

    def do_DELETE(self) -> None:
        route = self._route()
        if len(route) == 2 and route[0] == "tenants":
            try:
                self.service.registry.remove(route[1])
            except DataError as error:
                self._send_json(404, {"error": str(error)})
            else:
                self._send_json(200, {"removed": route[1]})
        else:
            self._send_json(404, {"error": "no such endpoint"})

    # -- handlers ------------------------------------------------------------
    def _create_tenant(self, tenant_id: str) -> None:
        registry = self.service.registry
        try:
            body = self._read_json()
            spec = TenantSpec.from_record(tenant_id, body)
            tenant = registry.create(spec)
        except (ConfigurationError, DataError) as error:
            self._send_json(400, {"error": str(error)})
        except ReproError as error:
            # Poison spec: the registry journaled the quarantine; the
            # process and every other tenant stay healthy.
            self._send_json(
                500,
                {
                    "error": str(error),
                    "error_type": type(error).__name__,
                    "quarantined": True,
                },
            )
        else:
            state = tenant.state
            self._send_json(
                201,
                {
                    "tenant": tenant_id,
                    "system": tenant.spec.system,
                    "properties": len(state.dataset.properties()),
                    "sources": list(state.dataset.sources()),
                },
            )

    def _add_source(self, tenant_id: str) -> None:
        registry = self.service.registry
        try:
            body = self._read_json()
            path = body.get("path")
            if not path:
                raise DataError('add-source body needs {"path": "<csv>"}')
            if registry.get(tenant_id) is None:
                self._send_json(404, {"error": f"no such tenant: {tenant_id}"})
                return
            delta = registry.add_source(tenant_id, path)
        except TenantQuarantinedError as error:
            self._send_json(503, {"error": str(error), "reason": error.reason})
        except (ConfigurationError, DataError) as error:
            self._send_json(400, {"error": str(error)})
        except ReproError as error:
            self._send_json(
                500, {"error": str(error), "error_type": type(error).__name__}
            )
        else:
            self._send_json(200, {"tenant": tenant_id, **delta})

    def _matching(self, tenant_id: str, build_payload) -> None:
        """The admitted request path shared by ``match`` and ``predict``."""
        service = self.service
        registry = service.registry
        tenant = registry.get(tenant_id)
        if tenant is None:
            self._send_json(404, {"error": f"no such tenant: {tenant_id}"})
            return
        if tenant.quarantined:
            # The bulkhead: a quarantined tenant never consumes a slot.
            self._send_json(
                503,
                {
                    "error": f"tenant {tenant_id} is quarantined",
                    "reason": tenant.quarantine.reason,
                },
            )
            return
        try:
            body = self._read_json()
            with service.admission.slot(tenant_id):
                payload = build_payload(body)
        except AdmissionShed as shed:
            self._send_json(
                429,
                {"error": str(shed), "retry_after": shed.retry_after},
                retry_after=shed.retry_after,
            )
        except (DeadlineExceeded, ServiceStopping) as error:
            self._send_json(503, {"error": str(error)})
        except TenantQuarantinedError as error:
            self._send_json(503, {"error": str(error), "reason": error.reason})
        except (ConfigurationError, DataError) as error:
            # Client errors do not count against the tenant's breaker.
            self._send_json(400, {"error": str(error)})
        except Exception as error:  # repro: noqa[REP005] recorded against the tenant breaker and surfaced as a structured 500
            opened = registry.record_failure(tenant_id, error)
            self._send_json(
                500,
                {
                    "error": str(error),
                    "error_type": type(error).__name__,
                    "quarantined": opened,
                },
            )
        else:
            registry.record_success(tenant_id)
            self._send_json(200, payload)


class MatchingService:
    """One long-lived server: registry + admission + HTTP acceptor.

    ``port=0`` binds an ephemeral port (tests, smoke scripts); read
    :attr:`port` after construction.  The acceptor runs on a background
    thread (:meth:`start`); :meth:`serve_until_signalled` is the CLI
    foreground loop with signal-driven drain.
    """

    def __init__(
        self,
        registry: TenantRegistry,
        admission: AdmissionQueue | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        drain_grace: float = 10.0,
    ) -> None:
        self.registry = registry
        self.admission = admission or AdmissionQueue()
        self.probes = ServiceProbes(registry, self.admission)
        self.stop_event = self.admission.stop_event
        self.drain_grace = drain_grace
        handler = type("BoundHandler", (_Handler,), {"service": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None
        self._received_signal: int | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        """Accept connections on a background thread."""
        if self._thread is not None:
            raise ConfigurationError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": _WAIT_SLICE},
            name="repro-serve-acceptor",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> bool:
        """Drain-then-stop; returns whether in-flight work finished."""
        self.stop_event.set()
        self._httpd.shutdown()
        drained = self.admission.await_drain(self.drain_grace)
        if self._thread is not None:
            self._thread.join(self.drain_grace)
            self._thread = None
        self._httpd.server_close()
        return drained

    # -- CLI foreground loop -------------------------------------------------
    def _handle_signal(self, signum, frame) -> None:
        # Async-signal-safe: a single first-wins slot plus an Event.  The
        # exit code reports the signal that *initiated* the drain, and a
        # list append here could run mid-allocation of unrelated code.
        if self._received_signal is None:
            self._received_signal = signum
        self.stop_event.set()

    def serve_until_signalled(self) -> None:
        """Run until SIGINT/SIGTERM, drain, raise :class:`GridInterrupted`.

        Mirrors the follow daemon's contract: the exception carries the
        delivering signal so ``repro serve --http`` exits 128+signum
        after a clean drain.
        """
        previous = {
            signal.SIGINT: signal.signal(signal.SIGINT, self._handle_signal),
            signal.SIGTERM: signal.signal(signal.SIGTERM, self._handle_signal),
        }
        try:
            self.start()
            while not self.stop_event.is_set():
                self.stop_event.wait(_WAIT_SLICE)
            drained = self.stop()
            signum = self._received_signal
            raise GridInterrupted(
                "matching service stopped by signal"
                + ("" if drained else " (drain grace expired)"),
                signum=signum,
            )
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
