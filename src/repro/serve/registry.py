"""Resilient tenant registry: warm per-tenant matcher state, swapped atomically.

A *tenant* is one dataset/matcher pairing the service keeps warm: a
fitted matcher bundle, a fingerprint-keyed
:class:`~repro.core.feature_cache.PairFeatureStore` (for the LEAPME
systems), and the bootstrap spec that makes all of it reproducible.
The registry owns three invariants:

**Copy-on-swap reload.**  ``add_source`` never mutates the state a
request might be reading.  A *new* :class:`TenantState` is built beside
the old one -- through :meth:`PairFeatureStore.with_source`, the PR 5
delta path, so only the new rows/pairs are featurized and the result is
bit-identical to a cold rebuild -- and then swapped in with a single
attribute assignment.  In-flight requests finish against the state they
grabbed; new requests see the new state.

**Crash-safe lifecycle.**  Every transition is journaled
(:class:`~repro.serve.journal.RegistryJournal`) with fsynced appends
*before* the swap makes it visible, so :meth:`load` can warm-restart a
SIGKILLed server into the same tenant set: bootstraps and reloads are
deterministic functions of the journaled specs and file fingerprints,
which is what makes post-restart match responses byte-identical to a
cold rebuild over the same journal.

**Bulkhead quarantine.**  Each tenant carries a consecutive-failure
breaker.  A tenant whose requests keep failing is quarantined as a
structured journal record (reason, final error, failure count) and
answers 503 from then on -- it can never take the process, the
admission queue, or healthy tenants down with it.
"""

from __future__ import annotations

import copy
import hashlib
import threading
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.blocking import CandidatePolicy
from repro.core.matcher import LeapmeMatcher
from repro.core.pipeline import flush_persistent_distances
from repro.data.csvio import load_dataset_csv
from repro.data.model import Dataset
from repro.data.pairs import LabeledPair, build_pairs, sample_training_pairs
from repro.errors import (
    ConfigurationError,
    DataError,
    ReproError,
    TenantQuarantinedError,
)
from repro.ingest.watcher import alignment_sidecar, source_fingerprint
from repro.serve.journal import (
    REASON_CIRCUIT_OPEN,
    REASON_POISON_TENANT,
    TENANT_QUARANTINED,
    RegistryJournal,
    TenantEvent,
)
from repro.systems import build_system_matcher, fallback_embeddings

#: Fingerprints are content hashes truncated like journal keys.
_FINGERPRINT_HEX = 16


@dataclass(frozen=True)
class TenantSpec:
    """Everything needed to (re)bootstrap one tenant, JSON-serialisable.

    Either ``dataset`` names a built-in domain (with ``scale``) or
    ``instances``/``alignment`` point at CSV files on the server's
    filesystem.  ``seed`` drives the (single) training-pair draw of
    supervised systems; everything else downstream is deterministic, so
    the spec plus the input bytes pin the tenant's behaviour exactly.
    ``blocking`` is an optional candidate-policy label (see
    :meth:`repro.blocking.CandidatePolicy.from_label`); unset means the
    exact-equivalence null policy, and the label is journaled so a warm
    restart rebuilds the same pruned universe.
    """

    tenant: str
    system: str = "lsh"
    instances: str | None = None
    alignment: str | None = None
    dataset: str | None = None
    scale: str = "small"
    seed: int = 0
    threshold: float | None = None
    blocking: str | None = None

    def __post_init__(self) -> None:
        if not self.tenant or "/" in self.tenant:
            raise ConfigurationError(
                "tenant ids must be non-empty and slash-free"
            )
        if (self.dataset is None) == (self.instances is None):
            raise ConfigurationError(
                "a tenant spec needs exactly one of dataset= (built-in) "
                "or instances= (CSV path)"
            )
        # Fail at spec time, not bootstrap time: a bad blocking label is
        # a client error the create request should surface immediately.
        self.policy()

    def policy(self) -> CandidatePolicy:
        """The candidate policy this spec bootstraps with."""
        return CandidatePolicy.from_label(self.blocking)

    def to_record(self) -> dict:
        record: dict = {"system": self.system, "seed": self.seed, "scale": self.scale}
        for name in ("instances", "alignment", "dataset", "threshold", "blocking"):
            value = getattr(self, name)
            if value is not None:
                record[name] = value
        return record

    @classmethod
    def from_record(cls, tenant: str, record: dict) -> "TenantSpec":
        return cls(
            tenant=tenant,
            system=str(record.get("system", "lsh")),
            instances=record.get("instances"),
            alignment=record.get("alignment"),
            dataset=record.get("dataset"),
            scale=str(record.get("scale", "small")),
            seed=int(record.get("seed", 0)),
            threshold=record.get("threshold"),
            blocking=record.get("blocking"),
        )

    def input_fingerprint(self) -> str | None:
        """Content hash of the instances (+ alignment) files, if any.

        Journaled at creation so a warm restart can refuse to silently
        rebuild a tenant from bytes that changed underneath it -- the
        same contract the ingestion journal enforces on resume.
        """
        if self.instances is None:
            return None
        hasher = hashlib.sha256()
        try:
            hasher.update(Path(self.instances).read_bytes())
            if self.alignment is not None:
                hasher.update(b"\x1f")
                hasher.update(Path(self.alignment).read_bytes())
        except OSError as problem:
            raise DataError(
                f"tenant {self.tenant!r}: cannot read bootstrap inputs: "
                f"{problem}"
            ) from None
        return hasher.hexdigest()[:_FINGERPRINT_HEX]


@dataclass(frozen=True)
class TenantState:
    """One immutable snapshot of a tenant's serving state.

    Requests read ``tenant.state`` exactly once and hold the reference;
    reloads build a whole new snapshot and swap it in.  Nothing in here
    is mutated after construction (store gathers are internally locked
    read-through caches; see :mod:`repro.core.feature_cache`).
    """

    dataset: Dataset
    matcher: object
    #: ``(file, fingerprint)`` of every reload applied, in order.
    sources: tuple[tuple[str, str], ...] = ()


@dataclass
class Tenant:
    """A registered tenant: spec, swappable state, breaker bookkeeping."""

    spec: TenantSpec
    state: TenantState | None = None
    #: Consecutive request failures (reset on success).
    failures: int = 0
    quarantine: TenantEvent | None = None
    #: Reload counter; the journal's ``order`` field.
    reloads: int = 0
    created_order: int = 0

    @property
    def quarantined(self) -> bool:
        return self.quarantine is not None


def _tenant_threshold(tenant: Tenant) -> float:
    if tenant.spec.threshold is not None:
        return float(tenant.spec.threshold)
    return float(tenant.state.matcher.threshold)


def _state_pair_count(state: TenantState) -> int:
    """Candidate pairs the state serves (the journal's bootstrap count).

    A warm LEAPME store answers from its universe -- under a blocking
    policy that is the pruned candidate count, and under the null
    policy it equals the full ``build_pairs`` enumeration exactly.
    """
    matcher = state.matcher
    if isinstance(matcher, LeapmeMatcher) and matcher.store is not None:
        return len(matcher.store.universe)
    return len(build_pairs(state.dataset).pairs)


class TenantRegistry:
    """The warm tenant set behind :mod:`repro.serve.server`.

    Parameters
    ----------
    journal:
        The crash-safe registry journal; pass the same path across
        restarts to warm-restart into the same tenant set.
    breaker_threshold:
        Consecutive request failures after which a tenant is
        quarantined (journaled, 503 from then on).
    fault_plan:
        Optional :class:`repro.testing.faults.ServeFaultPlan`; its
        ``maybe_exit`` hook fires after each journal append (and at the
        ``reload`` point just before one) so chaos tests can SIGKILL
        the process at exact lifecycle stages.
    """

    def __init__(
        self,
        journal: RegistryJournal | None = None,
        *,
        breaker_threshold: int = 3,
        fault_plan=None,
    ) -> None:
        if breaker_threshold < 1:
            raise ConfigurationError("breaker_threshold must be >= 1")
        self.journal = journal
        self.breaker_threshold = breaker_threshold
        self.fault_plan = fault_plan
        self._tenants: dict[str, Tenant] = {}
        #: Guards the tenant map (cheap, held briefly).
        self._lock = threading.Lock()
        #: Serialises bootstraps/reloads: featurization shares the
        #: process-wide distance memo, and one reload at a time keeps
        #: its bookkeeping single-writer.  Request serving never takes
        #: this lock.
        self._reload_lock = threading.Lock()
        self.loaded = False

    # -- introspection -------------------------------------------------------
    def tenants(self) -> list[Tenant]:
        """Current tenants, in creation order."""
        with self._lock:
            return sorted(self._tenants.values(), key=lambda t: t.created_order)

    def get(self, tenant_id: str) -> Tenant | None:
        with self._lock:
            return self._tenants.get(tenant_id)

    def ready(self) -> bool:
        """Whether every live tenant is warm (or pinned quarantined).

        The readiness gate: after :meth:`load` has replayed the journal
        there is no tenant whose state is still being built, so the
        service can take traffic without a cold-start stall.
        """
        if not self.loaded:
            return False
        return all(
            tenant.state is not None or tenant.quarantined
            for tenant in self.tenants()
        )

    # -- journaling + fault hooks -------------------------------------------
    def _journal(self, record_method: str, *args) -> None:
        if self.journal is not None:
            getattr(self.journal, record_method)(*args)

    def _maybe_fault(self, stage: str) -> None:
        if self.fault_plan is not None:
            self.fault_plan.maybe_exit(stage)

    # -- bootstrap -----------------------------------------------------------
    def _load_spec_dataset(self, spec: TenantSpec) -> Dataset:
        if spec.dataset is not None:
            from repro.datasets import load_dataset

            return load_dataset(spec.dataset, scale=spec.scale, seed=spec.seed)
        return load_dataset_csv(spec.instances, spec.alignment)

    def _bootstrap(self, spec: TenantSpec) -> TenantState:
        """Deterministic tenant bootstrap: dataset, embeddings, fit, store."""
        dataset = self._load_spec_dataset(spec)
        if spec.dataset is not None:
            from repro.datasets import build_domain_embeddings

            embeddings = build_domain_embeddings(spec.dataset, scale=spec.scale)
        else:
            embeddings = fallback_embeddings(dataset)
        matcher = build_system_matcher(spec.system, embeddings, spec.policy())
        store = None
        if isinstance(matcher, LeapmeMatcher):
            store = matcher.build_feature_store(dataset)
            matcher.attach_store(store)
        matcher.prepare(dataset)
        if matcher.is_supervised:
            rng = np.random.default_rng(spec.seed)
            # Under a blocking policy the tenant trains on the pruned
            # candidate universe -- the same pairs it will serve -- so
            # warm restarts stay bit-identical to this bootstrap.
            candidates = (
                store.universe.subset()
                if store is not None and store.universe.is_blocked
                else build_pairs(dataset)
            )
            training = sample_training_pairs(candidates, rng=rng)
            if not training.positives():
                raise ConfigurationError(
                    f"tenant {spec.tenant!r}: {spec.system} is supervised and "
                    "the bootstrap dataset has no positive training pairs; "
                    "provide an alignment"
                )
            matcher.fit(dataset, training)
        return TenantState(dataset=dataset, matcher=matcher)

    def create(self, spec: TenantSpec) -> Tenant:
        """Register and warm a tenant; journaled, quarantined on failure.

        The ``created`` record (spec + input fingerprint) lands before
        any bootstrap work, so a kill mid-bootstrap leaves a journal
        from which the restart re-runs the same deterministic bootstrap.
        A bootstrap that *fails* (poison spec) is journaled as a
        quarantined tenant -- the registry stays up, the client gets the
        error, healthy tenants are untouched.
        """
        with self._reload_lock:
            with self._lock:
                if spec.tenant in self._tenants:
                    raise DataError(f"tenant already exists: {spec.tenant}")
                created_order = len(self._tenants)
            self._journal(  # repro: noqa[REP014] durability before visibility: the record must be fsynced before the tenant is observable; serving never takes _reload_lock
                "record_created", spec.tenant, spec.to_record(),
                spec.input_fingerprint(),
            )
            self._maybe_fault("created")
            tenant = Tenant(spec=spec, created_order=created_order)
            try:
                state = self._bootstrap(spec)
            except ReproError as error:
                tenant.quarantine = TenantEvent(
                    spec.tenant,
                    TENANT_QUARANTINED,
                    reason=REASON_POISON_TENANT,
                    error_type=type(error).__name__,
                    error=str(error),
                )
                self._journal(  # repro: noqa[REP014] durability before visibility: the quarantine must be fsynced before the poisoned tenant is published; serving never takes _reload_lock
                    "record_quarantined", spec.tenant, REASON_POISON_TENANT,
                    error, 0,
                )
                with self._lock:
                    self._tenants[spec.tenant] = tenant
                raise
            tenant.state = state
            self._journal(  # repro: noqa[REP014] durability before visibility: bootstrap is journaled before the tenant serves; serving never takes _reload_lock
                "record_bootstrapped",
                spec.tenant,
                len(state.dataset.properties()),
                _state_pair_count(state),
            )
            flush_persistent_distances()
            self._maybe_fault("bootstrapped")
            with self._lock:
                self._tenants[spec.tenant] = tenant
            return tenant

    # -- copy-on-swap reload -------------------------------------------------
    def _state_with_source(
        self, state: TenantState, path: Path
    ) -> tuple[TenantState, int, int]:
        """A *new* state with ``path`` fused in; the old state untouched.

        Returns ``(state, properties_added, pairs_added)``.
        """
        addition = load_dataset_csv(path, alignment_sidecar(path), name=path.stem)
        if not addition.sources():
            raise DataError(f"no usable rows in {path}")
        overlap = set(addition.sources()) & set(state.dataset.sources())
        if overlap:
            raise DataError(
                f"sources already present in tenant dataset: {sorted(overlap)}"
            )
        matcher = state.matcher
        if isinstance(matcher, LeapmeMatcher) and matcher.store is not None:
            new_store, new_pairs = matcher.store.with_source(addition)
            new_matcher = matcher.with_store(new_store)
            merged = new_store.universe.dataset
            pairs_added = len(new_pairs)
        else:
            merged = state.dataset.merged_with(addition)
            # Shallow copy, then prepare: matchers rebind their
            # per-dataset state on prepare, so the old snapshot's
            # structures are never touched.
            new_matcher = copy.copy(matcher)
            new_matcher.prepare(merged)
            pairs_added = len(build_pairs(merged).pairs) - len(
                build_pairs(state.dataset).pairs
            )
        fingerprint = source_fingerprint(path)
        new_state = TenantState(
            dataset=merged,
            matcher=new_matcher,
            sources=state.sources + ((path.name, fingerprint),),
        )
        properties_added = len(merged.properties()) - len(
            state.dataset.properties()
        )
        return new_state, properties_added, pairs_added

    def add_source(self, tenant_id: str, path: str | Path) -> dict[str, int]:
        """Graceful reload: fuse a new source CSV into ``tenant_id``.

        The new state is fully built (and journaled) before the swap;
        in-flight requests keep serving the old state, and a process
        killed anywhere in between restarts into whichever side of the
        journal append it reached -- both sides byte-identical to a
        cold rebuild over the journal's record of events.
        """
        path = Path(path)
        tenant = self._require_live(tenant_id)
        with self._reload_lock:
            state = tenant.state
            new_state, addition_properties, new_pairs = self._state_with_source(
                state, path
            )
            self._maybe_fault("reload")
            order = tenant.reloads + 1
            self._journal(  # repro: noqa[REP014] durability before visibility: the reload is journaled before the swapped state is observable; serving never takes _reload_lock
                "record_source_added",
                tenant_id,
                str(path),
                new_state.sources[-1][1],
                order,
                addition_properties,
                new_pairs,
            )
            flush_persistent_distances()
            self._maybe_fault("source-added")
            tenant.reloads = order
            tenant.state = new_state
        return {
            "order": order,
            "properties": addition_properties,
            "pairs": new_pairs,
        }

    def remove(self, tenant_id: str) -> None:
        """Delete a tenant (journaled; a rebuild skips it)."""
        with self._reload_lock:
            with self._lock:
                if tenant_id not in self._tenants:
                    raise DataError(f"no such tenant: {tenant_id}")
                del self._tenants[tenant_id]
            self._journal("record_removed", tenant_id)  # repro: noqa[REP014] durability before visibility: removal is fsynced while admission still rejects the tenant; serving never takes _reload_lock
            self._maybe_fault("removed")

    # -- breaker -------------------------------------------------------------
    def record_success(self, tenant_id: str) -> None:
        with self._lock:
            tenant = self._tenants.get(tenant_id)
            if tenant is not None:
                tenant.failures = 0

    def record_failure(self, tenant_id: str, error: BaseException) -> bool:
        """Count one request failure; returns True when the breaker opened.

        ``breaker_threshold`` consecutive failures quarantine the
        tenant as a structured journal record.  The quarantine gates
        only this tenant: its slots drain, its requests get 503, and
        every other tenant keeps serving.

        Handler threads call this concurrently, so the counter moves
        only under ``_lock`` (the ``/statz`` failure totals are exact)
        and exactly the thread that lands on the threshold opens the
        breaker: it journals the quarantine *outside* the lock -- the
        fsynced append must not stall readers -- and then publishes the
        quarantine event with a second short hold.
        """
        with self._lock:
            tenant = self._tenants.get(tenant_id)
            if tenant is None or tenant.quarantined:
                return False
            tenant.failures += 1
            failures = tenant.failures
            if failures != self.breaker_threshold:
                return False
        event = TenantEvent(
            tenant_id,
            TENANT_QUARANTINED,
            reason=REASON_CIRCUIT_OPEN,
            error_type=type(error).__name__,
            error=str(error),
            failures=failures,
        )
        self._journal(
            "record_quarantined", tenant_id, REASON_CIRCUIT_OPEN, error,
            failures,
        )
        with self._lock:
            tenant.quarantine = event
        self._maybe_fault("quarantined")
        return True

    def _require_live(self, tenant_id: str) -> Tenant:
        tenant = self.get(tenant_id)
        if tenant is None:
            raise DataError(f"no such tenant: {tenant_id}")
        if tenant.quarantined:
            raise TenantQuarantinedError(
                f"tenant {tenant_id} is quarantined "
                f"({tenant.quarantine.reason}: {tenant.quarantine.error})",
                reason=tenant.quarantine.reason,
            )
        if tenant.state is None:
            raise DataError(f"tenant {tenant_id} is not warm yet")
        return tenant

    # -- request payloads ----------------------------------------------------
    def match_payload(self, tenant_id: str) -> dict:
        """The deterministic ``/match`` response body.

        Scores every cross-source pair of the tenant's current snapshot
        and returns the rows at or above the tenant threshold --
        exactly the content of ``repro match``'s CSV, as JSON.  Pure
        function of the snapshot, which is what the chaos suite's
        byte-identity assertions lean on.
        """
        tenant = self._require_live(tenant_id)
        state = tenant.state
        matcher = state.matcher
        if isinstance(matcher, LeapmeMatcher) and matcher.store is not None:
            # The warm store's universe is element-identical to
            # build_pairs and its gathers are cached.
            pairs = list(matcher.store.universe.pairs)
        else:
            pairs = build_pairs(state.dataset).pairs
        threshold = _tenant_threshold(tenant)
        scores = (
            matcher.score_pairs(state.dataset, pairs)
            if pairs
            else np.zeros(0)
        )
        matches = [
            [pair.left.source, pair.left.name,
             pair.right.source, pair.right.name, f"{float(score):.4f}"]
            for pair, score in zip(pairs, scores)
            if score >= threshold
        ]
        payload = {
            "tenant": tenant_id,
            "pairs": len(pairs),
            "threshold": threshold,
            "matches": matches,
            "sources": [file for file, _ in state.sources],
        }
        if (
            isinstance(matcher, LeapmeMatcher)
            and matcher.store is not None
            and matcher.store.universe.is_blocked
        ):
            # Only under a blocking policy: null-policy responses stay
            # byte-identical to the pre-blocking service.
            payload["blocking"] = matcher.store.universe.policy.label
        return payload

    def predict_payload(self, tenant_id: str, raw_pairs: list) -> dict:
        """The deterministic ``/predict`` response body for explicit pairs.

        ``raw_pairs`` is a list of ``[left_source, left_property,
        right_source, right_property]`` rows; unknown properties raise
        :class:`DataError` (a client error, not a tenant failure).
        """
        tenant = self._require_live(tenant_id)
        state = tenant.state
        refs = {
            (ref.source, ref.name): ref for ref in state.dataset.properties()
        }
        pairs: list[LabeledPair] = []
        for row in raw_pairs:
            if not isinstance(row, (list, tuple)) or len(row) != 4:
                raise DataError(
                    "each pair must be [left_source, left_property, "
                    "right_source, right_property]"
                )
            left = refs.get((str(row[0]), str(row[1])))
            right = refs.get((str(row[2]), str(row[3])))
            if left is None or right is None:
                missing = row[:2] if left is None else row[2:]
                raise DataError(f"unknown property: {list(missing)}")
            pairs.append(
                LabeledPair(left, right, state.dataset.is_match(left, right))
            )
        threshold = _tenant_threshold(tenant)
        scores = (
            state.matcher.score_pairs(state.dataset, pairs)
            if pairs
            else np.zeros(0)
        )
        return {
            "tenant": tenant_id,
            "threshold": threshold,
            "scores": [f"{float(score):.4f}" for score in scores],
            "decisions": [bool(score >= threshold) for score in scores],
        }

    def tenant_summaries(self) -> dict:
        """Per-tenant ``/statz`` section: status, sources, stage counters."""
        summaries: dict[str, dict] = {}
        for tenant in self.tenants():
            entry: dict = {
                "system": tenant.spec.system,
                "failures": tenant.failures,
            }
            if tenant.quarantined:
                entry["status"] = "quarantined"
                entry["reason"] = tenant.quarantine.reason
            elif tenant.state is None:
                entry["status"] = "warming"
            else:
                entry["status"] = "ready"
                state = tenant.state
                entry["properties"] = len(state.dataset.properties())
                entry["sources_added"] = len(state.sources)
                matcher = state.matcher
                if isinstance(matcher, LeapmeMatcher):
                    entry["stage_calls"] = dict(
                        sorted(matcher.pipeline.stage_calls.items())
                    )
                    if matcher.store is not None:
                        universe = matcher.store.universe
                        entry["blocking"] = universe.policy.label
                        entry["candidate_pairs"] = len(universe)
                        if universe.is_blocked:
                            stats = universe.blocking_stats()
                            entry["total_cross_pairs"] = stats["total_pairs"]
                            entry["reduction_ratio"] = round(
                                stats["reduction_ratio"], 4
                            )
            summaries[tenant.spec.tenant] = entry
        return summaries

    # -- warm restart --------------------------------------------------------
    def load(self) -> dict[str, int]:
        """Warm-restart from the journal; returns replay counts.

        Replays ``created`` specs (verifying input fingerprints against
        the files on disk, exactly as ingestion resume does) and then
        each tenant's ``source-added`` records in order, through the
        same deterministic bootstrap and delta paths that produced
        them.  Tenants whose latest status is ``quarantined`` are
        pinned quarantined without a rebuild; tenants that fail to
        rebuild (poison specs) are quarantined rather than taking the
        registry down.  Marks the registry loaded (the ``/readyz``
        gate) even when the journal is empty or absent.
        """
        replayed_tenants = replayed_sources = quarantined = 0
        if self.journal is not None:
            latest = self.journal.latest()
            for genesis, additions in self.journal.replay_plan():
                spec = TenantSpec.from_record(genesis.tenant, genesis.spec or {})
                last = latest[genesis.tenant]
                if last.status == TENANT_QUARANTINED:
                    with self._lock:
                        self._tenants[spec.tenant] = Tenant(
                            spec=spec,
                            quarantine=last,
                            failures=last.failures or 0,
                            created_order=len(self._tenants),
                        )
                    quarantined += 1
                    continue
                current = spec.input_fingerprint()
                if genesis.fingerprint is not None and current != genesis.fingerprint:
                    raise DataError(
                        f"cannot warm-restart tenant {spec.tenant!r}: its "
                        f"bootstrap inputs changed since creation (journal "
                        f"{genesis.fingerprint}, disk {current})"
                    )
                try:
                    tenant = self._replay_tenant(spec, additions)
                except ReproError as error:
                    tenant = Tenant(spec=spec)
                    tenant.quarantine = TenantEvent(
                        spec.tenant,
                        TENANT_QUARANTINED,
                        reason=REASON_POISON_TENANT,
                        error_type=type(error).__name__,
                        error=str(error),
                    )
                    self._journal(
                        "record_quarantined", spec.tenant,
                        REASON_POISON_TENANT, error, 0,
                    )
                    quarantined += 1
                with self._lock:
                    tenant.created_order = len(self._tenants)
                    self._tenants[spec.tenant] = tenant
                replayed_tenants += 1
                replayed_sources += len(additions)
        self.loaded = True
        return {
            "tenants": replayed_tenants,
            "sources": replayed_sources,
            "quarantined": quarantined,
        }

    def _replay_tenant(
        self, spec: TenantSpec, additions: list[TenantEvent]
    ) -> Tenant:
        tenant = Tenant(spec=spec)
        state = self._bootstrap(spec)
        for event in additions:
            path = Path(event.file)
            if not path.exists():
                raise DataError(
                    f"cannot warm-restart tenant {spec.tenant!r}: reloaded "
                    f"source {event.file} is missing"
                )
            current = source_fingerprint(path)
            if current != event.fingerprint:
                raise DataError(
                    f"cannot warm-restart tenant {spec.tenant!r}: {event.file} "
                    f"changed since it was fused (journal {event.fingerprint}, "
                    f"disk {current})"
                )
            state, _, _ = self._state_with_source(state, path)
            tenant.reloads = event.order or tenant.reloads + 1
        tenant.state = state
        return tenant
