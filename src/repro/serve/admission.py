"""Bounded admission: load shedding, deadlines, per-tenant bulkheads.

The acceptor thread of :mod:`repro.serve.server` hands every request to
an :class:`AdmissionQueue` before any matching work happens.  The queue
enforces three limits so a burst -- or one slow tenant -- can never
wedge the process:

**Bounded depth.**  At most ``max_active`` requests execute and at most
``max_waiting`` wait; a request arriving beyond that is *shed*
immediately with :class:`AdmissionShed`, which the HTTP layer maps to
429 plus a deterministic ``Retry-After`` header (the
:class:`~repro.evaluation.runner.RetryPolicy` jitter function keyed by
the tenant, so two replicas shed identically and a retrying client
herd is spread without consulting a global RNG).  Memory use is bounded
by construction: nothing queues beyond ``max_waiting``.

**Per-request deadlines.**  A waiter holds a monotonic-clock deadline
(:data:`time.monotonic`; wall clocks are banned by REP003) and gives up
with :class:`DeadlineExceeded` (503) when it expires -- waiting
capacity is always reclaimed, even if the active requests are stuck.

**Per-tenant bulkheads.**  At most ``max_per_tenant`` of the active
slots serve any one tenant, so a tenant with pathologically slow
requests saturates its own bulkhead and queues behind itself while
other tenants keep being admitted.

Every wait is stop-aware (REP011): waiters poll the shared stop event
with short condition timeouts and abandon the queue with
:class:`ServiceStopping` once drain begins.
"""

from __future__ import annotations

import hashlib
import math
import threading
import time

from repro.errors import ConfigurationError, ReproError
from repro.evaluation.runner import RetryPolicy


class AdmissionShed(ReproError):
    """The queue is full; the client should retry after ``retry_after``."""

    def __init__(self, message: str, retry_after: int) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class DeadlineExceeded(ReproError):
    """A request waited past its admission deadline."""


class ServiceStopping(ReproError):
    """The server is draining; no new work is admitted."""


#: Upper bound on one condition wait so every waiter re-checks the stop
#: event promptly even when its deadline is far away.
_WAIT_SLICE = 0.2


def _tenant_repetition(tenant: str) -> int:
    """Stable per-tenant index into the jitter function's hash space."""
    digest = hashlib.sha256(tenant.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


class AdmissionQueue:
    """Bounded two-stage admission with deterministic shedding.

    Use as a context manager per request::

        with admission.slot(tenant_id):
            ... do the matching work ...

    ``slot`` either admits (bounded wait) or raises one of the module's
    typed errors; the ``with`` body only ever runs inside an active
    slot, and the slot is returned on exit regardless of outcome.
    """

    def __init__(
        self,
        *,
        max_active: int = 4,
        max_waiting: int = 8,
        max_per_tenant: int = 2,
        request_deadline: float = 30.0,
        retry_policy: RetryPolicy | None = None,
        seed: int = 0,
        stop_event: threading.Event | None = None,
        clock=time.monotonic,
    ) -> None:
        if max_active < 1 or max_waiting < 0 or max_per_tenant < 1:
            raise ConfigurationError(
                "admission limits must be positive (max_waiting may be 0)"
            )
        if request_deadline <= 0:
            raise ConfigurationError("request_deadline must be positive")
        self.max_active = max_active
        self.max_waiting = max_waiting
        self.max_per_tenant = min(max_per_tenant, max_active)
        self.request_deadline = request_deadline
        #: Retry-After source: base 1s with full deterministic jitter,
        #: so the header is always in [1, 2] seconds and a pure function
        #: of (seed, tenant).
        self.retry_policy = retry_policy or RetryPolicy(
            max_retries=1, backoff_base=1.0, jitter=1.0
        )
        self.seed = seed
        self.stop_event = stop_event or threading.Event()
        self._clock = clock
        self._cond = threading.Condition()
        self._active = 0
        self._waiting = 0
        self._per_tenant: dict[str, int] = {}
        self.counters = {
            "admitted": 0,
            "shed": 0,
            "expired": 0,
            "completed": 0,
        }

    # -- introspection -------------------------------------------------------
    def depth(self) -> dict[str, int]:
        """Live queue depth for ``/statz``."""
        with self._cond:
            return {
                "active": self._active,
                "waiting": self._waiting,
                "max_active": self.max_active,
                "max_waiting": self.max_waiting,
            }

    def stats(self) -> dict:
        stats = self.depth()
        with self._cond:
            stats.update(self.counters)
        return stats

    def drained(self) -> bool:
        with self._cond:
            return self._active == 0 and self._waiting == 0

    def await_drain(self, grace: float) -> bool:
        """Wait up to ``grace`` seconds for in-flight requests to finish."""
        deadline = self._clock() + grace
        with self._cond:
            while self._active or self._waiting:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    return False
                self._cond.wait(min(remaining, _WAIT_SLICE))
            return True

    # -- shedding ------------------------------------------------------------
    def retry_after(self, tenant: str) -> int:
        """Deterministic whole-second ``Retry-After`` for ``tenant``."""
        delay = self.retry_policy.delay(
            1, seed=self.seed, repetition=_tenant_repetition(tenant)
        )
        return max(1, math.ceil(delay))

    # -- the slot ------------------------------------------------------------
    def slot(self, tenant: str) -> "_Slot":
        return _Slot(self, tenant)

    def _must_wait(self, tenant: str) -> bool:
        return (
            self._active >= self.max_active
            or self._per_tenant.get(tenant, 0) >= self.max_per_tenant
        )

    def _acquire(self, tenant: str) -> None:
        with self._cond:
            if self.stop_event.is_set():
                raise ServiceStopping("server is draining; not admitting")
            # Shed only requests that would actually have to wait: a
            # free slot is always taken, even with max_waiting=0.
            if self._must_wait(tenant) and self._waiting >= self.max_waiting:
                self.counters["shed"] += 1
                raise AdmissionShed(
                    f"admission queue full ({self._waiting} waiting, "
                    f"{self._active} active)",
                    retry_after=self.retry_after(tenant),
                )
            self._waiting += 1
            deadline = self._clock() + self.request_deadline
            try:
                while self._must_wait(tenant):
                    if self.stop_event.is_set():
                        raise ServiceStopping(
                            "server is draining; not admitting"
                        )
                    remaining = deadline - self._clock()
                    if remaining <= 0:
                        self.counters["expired"] += 1
                        raise DeadlineExceeded(
                            f"request for tenant {tenant!r} waited "
                            f"{self.request_deadline:.1f}s without a slot"
                        )
                    self._cond.wait(min(remaining, _WAIT_SLICE))
                self._active += 1
                self._per_tenant[tenant] = self._per_tenant.get(tenant, 0) + 1
                self.counters["admitted"] += 1
            finally:
                self._waiting -= 1
                self._cond.notify_all()

    def _release(self, tenant: str) -> None:
        with self._cond:
            self._active -= 1
            remaining = self._per_tenant.get(tenant, 1) - 1
            if remaining > 0:
                self._per_tenant[tenant] = remaining
            else:
                self._per_tenant.pop(tenant, None)
            self.counters["completed"] += 1
            self._cond.notify_all()


class _Slot:
    """Context manager binding one admitted request to its release."""

    def __init__(self, queue: AdmissionQueue, tenant: str) -> None:
        self._queue = queue
        self._tenant = tenant

    def __enter__(self) -> "_Slot":
        self._queue._acquire(self._tenant)
        return self

    def __exit__(self, *exc_info) -> None:
        self._queue._release(self._tenant)
