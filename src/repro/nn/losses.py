"""Loss functions.

Only the fused softmax + cross-entropy is needed (the paper's final layer
"has two neurons from which the final score is obtained"), but the fused
form is provided for any number of classes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionError


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the usual max-shift for numerical stability."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class SoftmaxCrossEntropy:
    """Fused softmax + categorical cross-entropy over integer labels.

    Fusing the two keeps the backward pass the numerically trivial
    ``probs - onehot(labels)``.
    """

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        """Mean cross-entropy of ``logits`` (n, classes) vs labels (n,)."""
        logits = np.asarray(logits, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if logits.ndim != 2:
            raise DimensionError(f"logits must be 2-D, got shape {logits.shape}")
        if labels.shape != (logits.shape[0],):
            raise DimensionError(
                f"labels shape {labels.shape} incompatible with logits {logits.shape}"
            )
        if labels.min(initial=0) < 0 or labels.max(initial=0) >= logits.shape[1]:
            raise DimensionError("labels out of range for the given logits")
        self._probs = softmax(logits)
        self._labels = labels
        picked = self._probs[np.arange(len(labels)), labels]
        return float(-np.log(np.clip(picked, 1e-12, None)).mean())

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss w.r.t. the logits."""
        if self._probs is None or self._labels is None:
            raise DimensionError("backward called before forward")
        grad = self._probs.copy()
        grad[np.arange(len(self._labels)), self._labels] -= 1.0
        return grad / len(self._labels)
