"""Weight initialisers for dense layers."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def he_normal(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """He (Kaiming) normal initialisation, the right scale for ReLU nets."""
    scale = np.sqrt(2.0 / fan_in)
    return rng.standard_normal((fan_in, fan_out)) * scale


def glorot_uniform(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot (Xavier) uniform initialisation, Keras's Dense default."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def zeros(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """All-zero initialisation (for biases)."""
    return np.zeros((fan_in, fan_out))


_INITIALIZERS = {
    "he_normal": he_normal,
    "glorot_uniform": glorot_uniform,
    "zeros": zeros,
}


def get_initializer(name: str):
    """Look up an initialiser by name."""
    try:
        return _INITIALIZERS[name]
    except KeyError:
        known = ", ".join(sorted(_INITIALIZERS))
        raise ConfigurationError(f"unknown initializer {name!r}; known: {known}") from None
