"""Training metrics for the network substrate."""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionError


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct class predictions.

    ``predictions`` may be hard labels (1-D) or class scores (2-D, argmax
    is taken).
    """
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    if predictions.shape != labels.shape:
        raise DimensionError(
            f"shape mismatch: predictions {predictions.shape} vs labels {labels.shape}"
        )
    if len(labels) == 0:
        return 0.0
    return float((predictions == labels).mean())


def confusion_counts(predictions: np.ndarray, labels: np.ndarray) -> tuple[int, int, int, int]:
    """Binary (tp, fp, fn, tn) counts; class 1 is "positive"."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    tp = int(((predictions == 1) & (labels == 1)).sum())
    fp = int(((predictions == 1) & (labels == 0)).sum())
    fn = int(((predictions == 0) & (labels == 1)).sum())
    tn = int(((predictions == 0) & (labels == 0)).sum())
    return tp, fp, fn, tn
