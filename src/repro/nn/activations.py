"""Elementwise activation layers."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Layer


class ReLU(Layer):
    """Rectified linear unit, the hidden activation used by LEAPME."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = inputs > 0
        return np.where(self._mask, inputs, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * self._mask


class Sigmoid(Layer):
    """Logistic sigmoid."""

    def __init__(self) -> None:
        self._outputs: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        # Numerically stable piecewise formulation.
        out = np.empty_like(inputs, dtype=np.float64)
        positive = inputs >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-inputs[positive]))
        exp_x = np.exp(inputs[~positive])
        out[~positive] = exp_x / (1.0 + exp_x)
        self._outputs = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        out = self._outputs
        return grad_output * out * (1.0 - out)


class Tanh(Layer):
    """Hyperbolic tangent."""

    def __init__(self) -> None:
        self._outputs: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        self._outputs = np.tanh(inputs)
        return self._outputs

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output * (1.0 - self._outputs**2)
