"""Numeric health guards: fail fast on NaN/Inf instead of averaging it away.

A single NaN in a feature matrix silently propagates through matrix
products, turns every similarity score into NaN and -- because ``NaN >=
threshold`` is False -- degrades a matcher to "predicts nothing" without
any error.  These guards convert that silent corruption into typed
exceptions (:class:`~repro.errors.NumericError`,
:class:`~repro.errors.TrainingDivergedError`) that the evaluation
runner's failure isolation and the resilient classifier can act on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NumericError, TrainingDivergedError


def fraction_nonfinite(array: np.ndarray) -> float:
    """Fraction of entries that are NaN or +/-Inf (0.0 for empty arrays)."""
    array = np.asarray(array, dtype=np.float64)
    if array.size == 0:
        return 0.0
    return float(np.count_nonzero(~np.isfinite(array))) / array.size


def assert_finite(array: np.ndarray, name: str = "array") -> np.ndarray:
    """Return ``array`` unchanged, raising :class:`NumericError` on NaN/Inf.

    The error message reports how much of the array is corrupt and a
    sample of offending positions, which is what one actually needs when
    debugging a poisoned feature pipeline.
    """
    array = np.asarray(array)
    if array.size == 0 or np.isfinite(array).all():
        return array
    bad = np.argwhere(~np.isfinite(np.asarray(array, dtype=np.float64)))
    sample = ", ".join(str(tuple(int(i) for i in index)) for index in bad[:3])
    raise NumericError(
        f"{name} contains {len(bad)} non-finite value(s) "
        f"({fraction_nonfinite(array):.1%} of {array.size}; e.g. at {sample})"
    )


def check_loss(loss: float, epoch: int) -> float:
    """Return ``loss``, raising :class:`TrainingDivergedError` if non-finite."""
    if not np.isfinite(loss):
        raise TrainingDivergedError(
            f"training loss became non-finite ({loss!r}) at epoch {epoch}; "
            "the optimisation has diverged"
        )
    return float(loss)
