"""Gradient-descent optimisers updating parameter arrays in place."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class Optimizer:
    """Base optimiser; subclasses implement :meth:`step`.

    The learning rate is a mutable attribute so the phase schedule can
    change it between epochs without rebuilding optimiser state.
    """

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = learning_rate

    def step(self, parameters: list[np.ndarray], gradients: list[np.ndarray]) -> None:
        """Apply one update to every parameter array, in place."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, learning_rate: float = 1e-3, momentum: float = 0.0) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: dict[int, np.ndarray] = {}

    def step(self, parameters: list[np.ndarray], gradients: list[np.ndarray]) -> None:
        for param, grad in zip(parameters, gradients, strict=True):
            if self.momentum > 0.0:
                velocity = self._velocity.setdefault(id(param), np.zeros_like(param))
                velocity *= self.momentum
                velocity -= self.learning_rate * grad
                param += velocity
            else:
                param -= self.learning_rate * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) -- the Keras default LEAPME trains with."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self, parameters: list[np.ndarray], gradients: list[np.ndarray]) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, grad in zip(parameters, gradients, strict=True):
            m = self._m.setdefault(id(param), np.zeros_like(param))
            v = self._v.setdefault(id(param), np.zeros_like(param))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
