"""Serialisation of :class:`~repro.nn.network.Sequential` networks.

A network is stored as one compressed ``.npz``: a JSON architecture
description plus the parameter arrays in layer order, so a trained
classifier can be shipped without retraining.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import DataError
from repro.ioutils import atomic_save
from repro.nn.activations import ReLU, Sigmoid, Tanh
from repro.nn.layers import Dense, Dropout, Layer
from repro.nn.network import Sequential

_ACTIVATIONS = {"relu": ReLU, "sigmoid": Sigmoid, "tanh": Tanh}


def _layer_spec(layer: Layer) -> dict:
    if isinstance(layer, Dense):
        return {
            "kind": "dense",
            "in_features": layer.in_features,
            "out_features": layer.out_features,
        }
    if isinstance(layer, Dropout):
        return {"kind": "dropout", "rate": layer.rate}
    for name, cls in _ACTIVATIONS.items():
        if isinstance(layer, cls):
            return {"kind": name}
    raise DataError(f"cannot serialise layer type {type(layer).__name__}")


def _build_layer(spec: dict) -> Layer:
    kind = spec.get("kind")
    if kind == "dense":
        return Dense(int(spec["in_features"]), int(spec["out_features"]))
    if kind == "dropout":
        return Dropout(float(spec["rate"]))
    if kind in _ACTIVATIONS:
        return _ACTIVATIONS[kind]()
    raise DataError(f"unknown layer kind in network file: {kind!r}")


def save_network(network: Sequential, path: str | Path) -> None:
    """Write architecture + parameters to a compressed ``.npz``.

    The write is atomic (temp file + ``os.replace``): a kill mid-save
    leaves either the previous file or none, never a truncated archive.
    """
    architecture = [_layer_spec(layer) for layer in network.layers]
    arrays = {
        f"param_{index}": parameter
        for index, parameter in enumerate(network.parameters())
    }
    atomic_save(
        Path(path),
        lambda temp: np.savez_compressed(
            temp,
            architecture=np.array(json.dumps(architecture)),
            fitted=np.array(network._fitted),
            **arrays,
        ),
        suffix=".npz",
    )


def load_network(path: str | Path) -> Sequential:
    """Read a network written by :func:`save_network`."""
    path = Path(path)
    if not path.exists():
        raise DataError(f"network file not found: {path}")
    with np.load(path, allow_pickle=False) as payload:
        if "architecture" not in payload:
            raise DataError(f"not a network file: {path}")
        architecture = json.loads(str(payload["architecture"]))
        network = Sequential([_build_layer(spec) for spec in architecture])
        parameters = network.parameters()
        for index, parameter in enumerate(parameters):
            key = f"param_{index}"
            if key not in payload:
                raise DataError(f"network file missing parameter {key}")
            stored = payload[key]
            if stored.shape != parameter.shape:
                raise DataError(
                    f"parameter {key} shape {stored.shape} != expected {parameter.shape}"
                )
            parameter[...] = stored
        network._fitted = bool(payload["fitted"])
    return network
