"""Trainable layers: the base protocol, Dense and Dropout."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DimensionError
from repro.nn.initializers import get_initializer


class Layer:
    """Base class for all layers.

    Subclasses implement :meth:`forward` and :meth:`backward`; trainable
    layers additionally expose aligned ``parameters()`` / ``gradients()``
    lists that optimisers update in place.
    """

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output, caching whatever backward needs."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Propagate ``dLoss/dOutput`` to ``dLoss/dInput``, filling gradients."""
        raise NotImplementedError

    def parameters(self) -> list[np.ndarray]:
        """Trainable arrays (updated in place by the optimiser)."""
        return []

    def gradients(self) -> list[np.ndarray]:
        """Gradient arrays aligned with :meth:`parameters`."""
        return []


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        weight_init: str = "glorot_uniform",
        rng: np.random.Generator | None = None,
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ConfigurationError(
                f"layer sizes must be positive, got {in_features}x{out_features}"
            )
        rng = rng if rng is not None else np.random.default_rng(0)
        initializer = get_initializer(weight_init)
        self.weights = initializer(in_features, out_features, rng)
        self.bias = np.zeros(out_features)
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)
        self._inputs: np.ndarray | None = None

    @property
    def in_features(self) -> int:
        return self.weights.shape[0]

    @property
    def out_features(self) -> int:
        return self.weights.shape[1]

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 2 or inputs.shape[1] != self.in_features:
            raise DimensionError(
                f"Dense({self.in_features}->{self.out_features}) got input "
                f"shape {inputs.shape}"
            )
        self._inputs = inputs
        return inputs @ self.weights + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._inputs is None:
            raise DimensionError("backward called before forward")
        self.grad_weights[...] = self._inputs.T @ grad_output
        self.grad_bias[...] = grad_output.sum(axis=0)
        return grad_output @ self.weights.T

    def parameters(self) -> list[np.ndarray]:
        return [self.weights, self.bias]

    def gradients(self) -> list[np.ndarray]:
        return [self.grad_weights, self.grad_bias]


class Dropout(Layer):
    """Inverted dropout; active only when ``training=True``."""

    def __init__(self, rate: float, rng: np.random.Generator | None = None) -> None:
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._mask: np.ndarray | None = None

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return inputs
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(inputs.shape) < keep) / keep
        return inputs * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask
