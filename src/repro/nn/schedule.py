"""Phased learning-rate schedules.

The paper trains its network in three phases: "a batch size of 32 and
perform 10 epochs with learning rate 1e-3, 5 with 1e-4, and 5 with 1e-5".
A :class:`TrainingSchedule` is simply an ordered list of
``(epochs, learning_rate)`` phases.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TrainingPhase:
    """A block of epochs trained at one learning rate."""

    epochs: int
    learning_rate: float

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigurationError(f"phase epochs must be >= 1, got {self.epochs}")
        if self.learning_rate <= 0:
            raise ConfigurationError(
                f"phase learning rate must be positive, got {self.learning_rate}"
            )


@dataclass(frozen=True)
class TrainingSchedule:
    """An ordered sequence of :class:`TrainingPhase` blocks."""

    phases: tuple[TrainingPhase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigurationError("schedule must contain at least one phase")

    @property
    def total_epochs(self) -> int:
        """Total epochs across all phases."""
        return sum(phase.epochs for phase in self.phases)

    def epoch_rates(self) -> Iterator[float]:
        """Yield the learning rate to use for every epoch, in order."""
        for phase in self.phases:
            for _ in range(phase.epochs):
                yield phase.learning_rate

    def scaled(self, factor: float) -> "TrainingSchedule":
        """This schedule with every learning rate multiplied by ``factor``.

        Used by the resilient training ladder to retry a diverged run at
        a reduced learning rate while keeping the epoch structure.
        """
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive, got {factor}")
        return TrainingSchedule(
            tuple(
                TrainingPhase(phase.epochs, phase.learning_rate * factor)
                for phase in self.phases
            )
        )

    @classmethod
    def constant(cls, epochs: int, learning_rate: float) -> "TrainingSchedule":
        """A single-phase schedule."""
        return cls((TrainingPhase(epochs, learning_rate),))

    @classmethod
    def from_pairs(cls, pairs: list[tuple[int, float]]) -> "TrainingSchedule":
        """Build a schedule from ``(epochs, learning_rate)`` tuples."""
        return cls(tuple(TrainingPhase(epochs, rate) for epochs, rate in pairs))


def paper_schedule() -> TrainingSchedule:
    """The exact schedule of the paper: 10@1e-3, 5@1e-4, 5@1e-5."""
    return TrainingSchedule.from_pairs([(10, 1e-3), (5, 1e-4), (5, 1e-5)])
