"""The :class:`Sequential` network with mini-batch training.

Mirrors the small slice of Keras the paper uses: stack Dense/activation
layers, train with mini-batches under a phased learning-rate schedule,
read out class probabilities from the softmax head.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.nn.guards import assert_finite, check_loss
from repro.nn.layers import Layer
from repro.nn.losses import SoftmaxCrossEntropy, softmax
from repro.nn.optimizers import Adam, Optimizer
from repro.nn.schedule import TrainingSchedule


@dataclass
class TrainingHistory:
    """Per-epoch training diagnostics collected by :meth:`Sequential.fit`."""

    losses: list[float] = field(default_factory=list)
    learning_rates: list[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.losses)


class Sequential:
    """An ordered stack of layers with a softmax-cross-entropy head."""

    def __init__(self, layers: list[Layer]) -> None:
        if not layers:
            raise ConfigurationError("network must contain at least one layer")
        self.layers = list(layers)
        self._loss = SoftmaxCrossEntropy()
        self._fitted = False

    def forward(self, inputs: np.ndarray, training: bool = False) -> np.ndarray:
        """Run all layers; returns the raw logits."""
        outputs = np.asarray(inputs, dtype=np.float64)
        for layer in self.layers:
            outputs = layer.forward(outputs, training=training)
        return outputs

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Back-propagate through all layers; returns the input gradient."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> list[np.ndarray]:
        """All trainable arrays, in layer order."""
        params: list[np.ndarray] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def gradients(self) -> list[np.ndarray]:
        """All gradient arrays, aligned with :meth:`parameters`."""
        grads: list[np.ndarray] = []
        for layer in self.layers:
            grads.extend(layer.gradients())
        return grads

    def fit(
        self,
        inputs: np.ndarray,
        labels: np.ndarray,
        schedule: TrainingSchedule,
        batch_size: int = 32,
        optimizer: Optimizer | None = None,
        rng: np.random.Generator | None = None,
        shuffle: bool = True,
    ) -> TrainingHistory:
        """Train with mini-batch gradient descent under a phase schedule.

        Parameters
        ----------
        inputs, labels:
            Training matrix ``(n, features)`` and integer class labels
            ``(n,)``.
        schedule:
            Epoch/learning-rate phases; the optimiser's learning rate is
            reassigned at each phase boundary (state such as Adam moments
            is kept, matching how Keras handles ``lr`` changes).
        batch_size:
            Mini-batch size (the paper uses 32).
        optimizer:
            Defaults to :class:`Adam`, Keras's conventional choice.
        rng:
            Source of shuffling randomness; pass a seeded generator for
            reproducible training.

        Raises
        ------
        NumericError
            If ``inputs`` contains NaN/Inf values.
        TrainingDivergedError
            If any epoch's mean loss becomes non-finite.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        assert_finite(inputs, "training inputs")
        labels = np.asarray(labels, dtype=np.int64)
        if inputs.ndim != 2:
            raise ConfigurationError(f"inputs must be 2-D, got shape {inputs.shape}")
        if len(inputs) != len(labels):
            raise ConfigurationError(
                f"inputs ({len(inputs)}) and labels ({len(labels)}) disagree"
            )
        if len(inputs) == 0:
            raise ConfigurationError("cannot fit on an empty training set")
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        optimizer = optimizer if optimizer is not None else Adam()
        rng = rng if rng is not None else np.random.default_rng(0)
        history = TrainingHistory()
        n = len(inputs)
        for learning_rate in schedule.epoch_rates():
            optimizer.learning_rate = learning_rate
            order = rng.permutation(n) if shuffle else np.arange(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, batch_size):
                batch = order[start : start + batch_size]
                logits = self.forward(inputs[batch], training=True)
                loss = self._loss.forward(logits, labels[batch])
                self.backward(self._loss.backward())
                optimizer.step(self.parameters(), self.gradients())
                epoch_loss += loss
                batches += 1
            history.losses.append(check_loss(epoch_loss / batches, len(history.losses)))
            history.learning_rates.append(learning_rate)
        self._fitted = True
        return history

    def predict_proba(self, inputs: np.ndarray) -> np.ndarray:
        """Class probabilities ``(n, classes)`` from the softmax head."""
        if not self._fitted:
            raise NotFittedError("network has not been trained; call fit() first")
        return softmax(self.forward(np.asarray(inputs, dtype=np.float64)))

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Hard class predictions ``(n,)``."""
        return self.predict_proba(inputs).argmax(axis=1)

    def num_parameters(self) -> int:
        """Total count of trainable scalars."""
        return sum(p.size for p in self.parameters())
