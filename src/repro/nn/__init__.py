"""Feed-forward neural-network substrate (the paper's Keras substitute).

A compact numpy implementation of exactly what LEAPME's classifier needs:

* :mod:`repro.nn.initializers` -- He / Glorot / zeros initialisation.
* :mod:`repro.nn.activations` -- ReLU, sigmoid, tanh layers.
* :mod:`repro.nn.layers` -- fully connected (Dense) and Dropout layers.
* :mod:`repro.nn.losses` -- fused softmax cross-entropy.
* :mod:`repro.nn.optimizers` -- SGD (with momentum) and Adam.
* :mod:`repro.nn.schedule` -- the paper's phased learning-rate schedule
  (10 epochs at 1e-3, 5 at 1e-4, 5 at 1e-5).
* :mod:`repro.nn.network` -- :class:`Sequential` with mini-batch training.
* :mod:`repro.nn.metrics` -- accuracy and confusion counts.

Gradients are verified against finite differences in the test suite.
"""

from repro.nn.activations import ReLU, Sigmoid, Tanh
from repro.nn.layers import Dense, Dropout
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.metrics import accuracy
from repro.nn.network import Sequential
from repro.nn.optimizers import SGD, Adam
from repro.nn.schedule import TrainingPhase, TrainingSchedule, paper_schedule

__all__ = [
    "Dense",
    "Dropout",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "SoftmaxCrossEntropy",
    "SGD",
    "Adam",
    "Sequential",
    "TrainingPhase",
    "TrainingSchedule",
    "paper_schedule",
    "accuracy",
]
