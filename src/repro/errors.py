"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid configuration value or combination was supplied."""


class DataError(ReproError):
    """Input data is malformed or violates a documented invariant."""


class TransientDataError(DataError):
    """Input data is unreadable *right now* but may become readable.

    Raised for states that a file legitimately passes through while an
    external writer is still producing it -- a zero-byte file, a CSV
    whose header row has not landed yet.  Callers that follow live
    feeds (:mod:`repro.ingest`) retry these with bounded backoff
    instead of quarantining the source; a plain :class:`DataError`
    means the file as a whole is not what the caller thinks it is and
    retrying the same bytes cannot help.
    """


class NotFittedError(ReproError):
    """A model was asked to predict before :meth:`fit` was called."""


class VocabularyError(ReproError):
    """A token or index is not present in an embedding vocabulary."""


class DimensionError(ReproError):
    """Arrays with incompatible shapes were combined."""


class NumericError(ReproError):
    """A numeric health guard tripped: NaN or Inf where finite values
    are required (feature matrices, similarity scores, losses)."""


class TrainingDivergedError(NumericError):
    """Model training produced a non-finite loss and cannot continue.

    Callers may retry with a smaller learning rate or fall back to a
    classical learner; see :class:`repro.core.classifier.ResilientClassifier`.
    """


class JournalError(ReproError):
    """A run journal file is unreadable or from an unsupported version."""


class TenantQuarantinedError(ReproError):
    """A serving tenant's circuit breaker is open; requests are refused.

    Raised by the tenant registry when a request targets a tenant that
    was quarantined (poison bootstrap spec or ``breaker_threshold``
    consecutive request failures).  The HTTP layer maps it to 503 for
    that tenant only; healthy tenants keep serving.  ``reason`` carries
    the structured quarantine reason from the registry journal.
    """

    def __init__(self, message: str, reason: str | None = None) -> None:
        super().__init__(message)
        self.reason = reason


class GridInterrupted(ReproError):
    """A grid run was stopped by SIGINT/SIGTERM and shut down cleanly.

    Raised *after* the completed prefix has been drained into the run
    journal, so a rerun with ``resume=True`` continues from exactly the
    work that was durably recorded.  ``signum`` carries the delivering
    signal when known (``None`` for programmatic stops).
    """

    def __init__(self, message: str, signum: int | None = None) -> None:
        super().__init__(message)
        self.signum = signum


class IngestInterrupted(GridInterrupted):
    """A follow-mode ingestion loop was stopped by SIGINT/SIGTERM.

    Raised *after* the in-flight batch has been drained and journaled,
    so ``repro serve --follow ... --resume`` continues from exactly the
    sources that were durably fused.  Subclasses
    :class:`GridInterrupted` so the CLI's signal exit-code path
    (128 + signum) covers both loops.
    """
