"""Match-quality metrics: precision, recall, F1 over property pairs.

"The focus is on match quality with the standard metrics precision,
recall and F-measure (F1 score)." (Section V)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DimensionError


@dataclass(frozen=True)
class MatchQuality:
    """Confusion counts with derived precision/recall/F1.

    The conventions for empty denominators follow the matching
    literature: precision of zero predictions is 0 unless there was also
    nothing to find, in which case all three metrics are 1 (a matcher
    that correctly stays silent is perfect).
    """

    true_positives: int
    false_positives: int
    false_negatives: int

    def __post_init__(self) -> None:
        if min(self.true_positives, self.false_positives, self.false_negatives) < 0:
            raise DimensionError("confusion counts must be non-negative")

    @property
    def precision(self) -> float:
        predicted = self.true_positives + self.false_positives
        if predicted == 0:
            return 1.0 if self.false_negatives == 0 else 0.0
        return self.true_positives / predicted

    @property
    def recall(self) -> float:
        actual = self.true_positives + self.false_negatives
        if actual == 0:
            return 1.0
        return self.true_positives / actual

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        if p + r == 0.0:
            return 0.0
        return 2.0 * p * r / (p + r)

    def __add__(self, other: "MatchQuality") -> "MatchQuality":
        """Micro-average accumulation across runs."""
        return MatchQuality(
            true_positives=self.true_positives + other.true_positives,
            false_positives=self.false_positives + other.false_positives,
            false_negatives=self.false_negatives + other.false_negatives,
        )

    def as_row(self) -> tuple[float, float, float]:
        """(P, R, F1) -- the column triple of Table II."""
        return (self.precision, self.recall, self.f1)


def evaluate_predictions(predictions: np.ndarray, labels: np.ndarray) -> MatchQuality:
    """Score binary match predictions against binary ground truth."""
    predictions = np.asarray(predictions).astype(bool)
    labels = np.asarray(labels).astype(bool)
    if predictions.shape != labels.shape:
        raise DimensionError(
            f"shape mismatch: predictions {predictions.shape} vs labels {labels.shape}"
        )
    tp = int((predictions & labels).sum())
    fp = int((predictions & ~labels).sum())
    fn = int((~predictions & labels).sum())
    return MatchQuality(true_positives=tp, false_positives=fp, false_negatives=fn)


def evaluate_scores(
    scores: np.ndarray, labels: np.ndarray, threshold: float = 0.5
) -> MatchQuality:
    """Threshold similarity scores, then score the decisions."""
    return evaluate_predictions(np.asarray(scores) >= threshold, labels)


def mean_quality(qualities: list[MatchQuality]) -> tuple[float, float, float]:
    """Macro-average (P, R, F1) across repetitions (the paper's averaging)."""
    if not qualities:
        return (0.0, 0.0, 0.0)
    ps = [quality.precision for quality in qualities]
    rs = [quality.recall for quality in qualities]
    f1s = [quality.f1 for quality in qualities]
    return (
        float(np.mean(ps)),
        float(np.mean(rs)),
        float(np.mean(f1s)),
    )
