"""Match-quality metrics (re-exported from :mod:`repro.metrics`).

The implementations live in the dependency-free top-level module so that
:mod:`repro.graph` can score clusterings without importing the (heavier)
evaluation harness.
"""

from repro.metrics import (
    MatchQuality,
    evaluate_predictions,
    evaluate_scores,
    mean_quality,
)

__all__ = [
    "MatchQuality",
    "evaluate_predictions",
    "evaluate_scores",
    "mean_quality",
]
