"""Run journal: checkpoint/resume for the experiment runner.

The paper's protocol (Section V-B) multiplies 25 repetitions by 4
datasets by 9 feature configurations -- hours of compute that, without a
journal, a single crash throws away.  This module gives every
(matcher, dataset, settings) cell a durable append-only record of its
repetitions so an interrupted grid resumes exactly where it left off.

Format
------
A journal is a JSONL file.  The first line is a header record::

    {"type": "journal", "version": 1}

Every subsequent line describes one repetition of one run cell::

    {"type": "repetition", "key": "...", "repetition": 3,
     "status": "ok", "tp": 10, "fp": 1, "fn": 2,
     "degradation": null, "attempts": 1}

``status`` is ``ok`` (quality recorded), ``skipped`` (no usable training
split) or ``failed`` (all retries exhausted; carries ``error_type`` and
``error``).  ``key`` identifies the cell -- see :func:`run_key` -- so one
journal file can serve a whole experiment grid.

Durability: each record is a single fsynced ``O_APPEND`` write
(:func:`repro.ioutils.fsync_append_line`).  A process killed mid-write
can leave at most one torn *final* line, which the reader detects and
drops; torn lines anywhere else mean real corruption and raise
:class:`~repro.errors.JournalError`.  Re-running a repetition appends a
fresh record; on read, the *last* record per (key, repetition) wins.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.data.model import Dataset
from repro.errors import JournalError
from repro.evaluation.metrics import MatchQuality
from repro.ioutils import fsync_append_line

_JOURNAL_VERSION = 1

#: ``type`` value of the header line every run journal starts with.
JOURNAL_HEADER_TYPE = "journal"

STATUS_OK = "ok"
STATUS_SKIPPED = "skipped"
STATUS_FAILED = "failed"

#: ``error_type`` values of ``failed`` records written by the pool
#: supervisor rather than by in-process failure isolation: the
#: repetition was quarantined after repeatedly crashing or timing out
#: the worker pool.  Like any other ``failed`` record, a resumed run
#: re-attempts it.
REASON_WORKER_CRASH = "worker_crash"
REASON_TIMEOUT = "timeout"
QUARANTINE_REASONS = frozenset({REASON_WORKER_CRASH, REASON_TIMEOUT})


def peek_journal_type(path: str | Path) -> str | None:
    """The ``type`` of a journal file's header line, or ``None``.

    Reads only the first line; used to dispatch a path to the journal
    class that owns it (run journals vs. ingestion journals) without
    parsing -- or validating -- the whole file.  Returns ``None`` for a
    missing, empty, or torn-headed file.
    """
    path = Path(path)
    if not path.exists():
        return None
    with path.open("r", encoding="utf-8") as handle:
        first = handle.readline()
    try:
        header = json.loads(first)
    except json.JSONDecodeError:
        return None
    if not isinstance(header, dict):
        return None
    kind = header.get("type")
    return kind if isinstance(kind, str) else None


def read_journal_records(
    path: str | Path, *, header_type: str, version: int, kind: str
) -> list[dict]:
    """Body records of a JSONL journal, torn-tail tolerant.

    The shared read side of the ``fsync_append_line`` machinery: a
    process killed mid-append leaves at most one torn *final* line,
    which is dropped; torn lines anywhere else mean real corruption and
    raise :class:`~repro.errors.JournalError`, as do a wrong header
    ``type`` or an unsupported ``version``.  A missing file reads as an
    empty journal.  ``kind`` names the journal flavour in error
    messages (``"a run journal"``, ``"an ingestion journal"``).
    """
    path = Path(path)
    if not path.exists():
        return []
    lines = path.read_text(encoding="utf-8").split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    records: list[dict] = []
    for number, line in enumerate(lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if number == len(lines) - 1:
                # Torn final line from a kill mid-append: recoverable.
                continue
            raise JournalError(
                f"corrupt journal line {number + 1} in {path}"
            ) from None
        records.append(record)
    if records:
        header = records[0]
        if header.get("type") != header_type:
            raise JournalError(f"not {kind} (missing header): {path}")
        if header.get("version") != version:
            raise JournalError(
                f"unsupported journal version {header.get('version')!r} "
                f"in {path}"
            )
    return records[1:]


def run_key(matcher_name: str, dataset: Dataset, settings) -> str:
    """Stable identifier for one (matcher, dataset, settings) run cell.

    Hashes the matcher name, the dataset's content fingerprint and every
    protocol parameter that affects the repetition stream, so resuming
    with *any* changed knob starts a fresh cell instead of silently
    mixing incompatible repetitions.  A human-readable prefix keeps
    journal files greppable.
    """
    payload = json.dumps(
        {
            "matcher": matcher_name,
            "dataset": dataset.fingerprint(),
            "train_fraction": settings.train_fraction,
            "repetitions": settings.repetitions,
            "negative_ratio": settings.negative_ratio,
            "seed": settings.seed,
        },
        sort_keys=True,
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
    return f"{matcher_name}|{dataset.name}|{digest}"


@dataclass(frozen=True)
class JournalEntry:
    """One repetition's outcome as recorded in (or read from) a journal."""

    key: str
    repetition: int
    status: str
    quality: MatchQuality | None = None
    degradation: str | None = None
    attempts: int = 1
    error_type: str | None = None
    error: str | None = None

    def to_record(self) -> dict:
        """JSON-serialisable journal line."""
        record: dict = {
            "type": "repetition",
            "key": self.key,
            "repetition": self.repetition,
            "status": self.status,
            "attempts": self.attempts,
        }
        if self.quality is not None:
            record.update(
                tp=self.quality.true_positives,
                fp=self.quality.false_positives,
                fn=self.quality.false_negatives,
            )
        if self.degradation is not None:
            record["degradation"] = self.degradation
        if self.error_type is not None:
            record["error_type"] = self.error_type
            record["error"] = self.error
        return record

    @classmethod
    def from_record(cls, record: dict) -> "JournalEntry":
        """Inverse of :meth:`to_record`."""
        try:
            quality = None
            if "tp" in record:
                quality = MatchQuality(
                    true_positives=int(record["tp"]),
                    false_positives=int(record["fp"]),
                    false_negatives=int(record["fn"]),
                )
            return cls(
                key=record["key"],
                repetition=int(record["repetition"]),
                status=record["status"],
                quality=quality,
                degradation=record.get("degradation"),
                attempts=int(record.get("attempts", 1)),
                error_type=record.get("error_type"),
                error=record.get("error"),
            )
        except (KeyError, TypeError, ValueError) as problem:
            raise JournalError(f"malformed journal record: {problem}") from None


class RunJournal:
    """Append-only JSONL journal of experiment repetitions.

    One instance wraps one file path; the file is created (with its
    header line) on the first append.  Reading never requires the file
    to exist -- a missing journal is simply an empty one, so
    ``evaluate_matcher(..., journal=RunJournal(path))`` works identically
    for fresh and resumed runs.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    # -- writing -------------------------------------------------------------
    def _ensure_header(self) -> None:
        if not self.path.exists() or self.path.stat().st_size == 0:
            fsync_append_line(
                self.path,
                json.dumps(
                    {"type": JOURNAL_HEADER_TYPE, "version": _JOURNAL_VERSION}
                ),
            )

    def append(self, entry: JournalEntry) -> None:
        """Durably record one repetition outcome (a single fsynced line)."""
        self._ensure_header()
        fsync_append_line(self.path, json.dumps(entry.to_record(), sort_keys=True))

    def record_quality(
        self,
        key: str,
        repetition: int,
        quality: MatchQuality,
        degradation: str | None = None,
        attempts: int = 1,
    ) -> None:
        """Record a completed repetition."""
        self.append(
            JournalEntry(
                key=key,
                repetition=repetition,
                status=STATUS_OK,
                quality=quality,
                degradation=degradation,
                attempts=attempts,
            )
        )

    def record_skip(self, key: str, repetition: int, reason: str) -> None:
        """Record a repetition skipped for data reasons (no positives)."""
        self.append(
            JournalEntry(
                key=key,
                repetition=repetition,
                status=STATUS_SKIPPED,
                error_type="skip",
                error=reason,
            )
        )

    def record_failure(
        self, key: str, repetition: int, error: BaseException, attempts: int
    ) -> None:
        """Record a repetition that exhausted its retries."""
        self.append(
            JournalEntry(
                key=key,
                repetition=repetition,
                status=STATUS_FAILED,
                attempts=attempts,
                error_type=type(error).__name__,
                error=str(error),
            )
        )

    # -- reading -------------------------------------------------------------
    def _raw_records(self) -> list[dict]:
        return read_journal_records(
            self.path,
            header_type=JOURNAL_HEADER_TYPE,
            version=_JOURNAL_VERSION,
            kind="a run journal",
        )

    def entries(self, key: str) -> dict[int, JournalEntry]:
        """Latest entry per repetition for one run cell (empty if none)."""
        latest: dict[int, JournalEntry] = {}
        for record in self._raw_records():
            if record.get("type") != "repetition" or record.get("key") != key:
                continue
            entry = JournalEntry.from_record(record)
            latest[entry.repetition] = entry
        return latest

    def keys(self) -> list[str]:
        """All run-cell keys present in the journal, in first-seen order."""
        seen: dict[str, None] = {}
        for record in self._raw_records():
            if record.get("type") == "repetition" and "key" in record:
                seen.setdefault(record["key"], None)
        return list(seen)

    def describe(self) -> str:
        """Post-mortem summary: per-status counts and the last failure.

        One line per run cell with ok / skipped / failed / quarantined /
        degraded counts (quarantined = ``failed`` records written by the
        pool supervisor, a subset of failed), followed by the most
        recently journaled failure among repetitions whose *latest*
        entry is still failed -- a failure that a resumed run later
        re-attempted successfully is history, not a finding, and is not
        reported.  Enough to diagnose a dead grid from
        ``repro describe --journal X`` alone.
        """
        # Latest entry per (key, repetition), with its journal position
        # so "last failure" means last *written* among still-failed ones.
        latest: dict[str, dict[int, tuple[int, JournalEntry]]] = {}
        for position, record in enumerate(self._raw_records()):
            if record.get("type") != "repetition" or "key" not in record:
                continue
            entry = JournalEntry.from_record(record)
            latest.setdefault(entry.key, {})[entry.repetition] = (position, entry)
        lines = [f"journal {self.path}:"]
        for key, repetitions in latest.items():
            per_status: dict[str, int] = {}
            degraded = 0
            quarantined = 0
            failures: list[tuple[int, JournalEntry]] = []
            for position, entry in repetitions.values():
                per_status[entry.status] = per_status.get(entry.status, 0) + 1
                if entry.degradation is not None:
                    degraded += 1
                if entry.status == STATUS_FAILED:
                    failures.append((position, entry))
                    if entry.error_type in QUARANTINE_REASONS:
                        quarantined += 1
            parts = [f"{per_status.get(STATUS_OK, 0)} ok"]
            if per_status.get(STATUS_SKIPPED):
                parts.append(f"{per_status[STATUS_SKIPPED]} skipped")
            if per_status.get(STATUS_FAILED):
                parts.append(f"{per_status[STATUS_FAILED]} failed")
            if quarantined:
                parts.append(f"{quarantined} quarantined")
            if degraded:
                parts.append(f"{degraded} degraded")
            lines.append(f"  {key}: " + ", ".join(parts))
            if failures:
                _, failure = max(failures, key=lambda pair: pair[0])
                lines.append(
                    f"    last failure: repetition {failure.repetition}: "
                    f"{failure.error_type}: {failure.error} "
                    f"(after {failure.attempts} attempt(s))"
                )
        if len(lines) == 1:
            lines.append("  (empty)")
        return "\n".join(lines)
