"""Statistical significance of matcher comparisons.

Table II compares mean F1 over repeated random source splits; whether
"LEAPME 0.89 vs Nezhadi 0.65" is a real difference or split luck needs a
test.  Two standard non-parametric procedures are provided:

* :func:`paired_permutation_test` -- for two systems evaluated on the
  *same* repetitions (paired by split), the sign-flip permutation test
  on the per-repetition metric differences;
* :func:`bootstrap_confidence_interval` -- percentile bootstrap CI for a
  single system's mean metric over its repetitions.

Both operate on plain per-repetition score lists, so they apply to any
metric the harness produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of a paired significance test between two systems."""

    mean_difference: float
    p_value: float
    n_pairs: int

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the difference is significant at level ``alpha``."""
        return self.p_value < alpha

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"dmean={self.mean_difference:+.3f}, p={self.p_value:.4f} "
            f"({self.n_pairs} paired runs)"
        )


def paired_permutation_test(
    scores_a: list[float],
    scores_b: list[float],
    n_permutations: int = 10_000,
    seed: int = 0,
) -> ComparisonResult:
    """Sign-flip permutation test on paired per-repetition scores.

    Tests the two-sided null hypothesis that systems A and B have the
    same expected metric: under the null, each paired difference is
    symmetric around zero, so flipping signs at random generates the
    reference distribution of the mean difference.

    With few repetitions (< ~13) all ``2^n`` sign assignments are
    enumerated exactly instead of sampled.
    """
    if len(scores_a) != len(scores_b):
        raise ConfigurationError(
            f"paired scores must align, got {len(scores_a)} vs {len(scores_b)}"
        )
    if len(scores_a) == 0:
        raise ConfigurationError("need at least one paired run")
    differences = np.asarray(scores_a, dtype=np.float64) - np.asarray(
        scores_b, dtype=np.float64
    )
    observed = float(differences.mean())
    n = len(differences)
    if np.allclose(differences, 0.0):
        return ComparisonResult(mean_difference=0.0, p_value=1.0, n_pairs=n)
    if n <= 12:
        # Exact enumeration of every sign assignment.
        count = 0
        total = 1 << n
        for mask in range(total):
            signs = np.array(
                [1.0 if mask & (1 << bit) else -1.0 for bit in range(n)]
            )
            if abs(float((differences * signs).mean())) >= abs(observed) - 1e-12:
                count += 1
        p_value = count / total
    else:
        rng = np.random.default_rng(seed)
        signs = rng.choice([-1.0, 1.0], size=(n_permutations, n))
        permuted = (signs * differences).mean(axis=1)
        # +1 smoothing keeps the p-value away from an impossible 0.
        count = int((np.abs(permuted) >= abs(observed) - 1e-12).sum())
        p_value = (count + 1) / (n_permutations + 1)
    return ComparisonResult(
        mean_difference=observed, p_value=float(p_value), n_pairs=n
    )


def bootstrap_confidence_interval(
    scores: list[float],
    confidence: float = 0.95,
    n_resamples: int = 10_000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap CI for the mean of per-repetition scores."""
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0, 1), got {confidence}")
    if len(scores) == 0:
        raise ConfigurationError("need at least one score")
    values = np.asarray(scores, dtype=np.float64)
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, len(values), size=(n_resamples, len(values)))
    means = values[indices].mean(axis=1)
    tail = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [tail, 1.0 - tail])
    return float(low), float(high)


def compare_results(result_a, result_b, metric: str = "f1") -> ComparisonResult:
    """Paired test between two :class:`ExperimentResult` objects.

    Both results must come from the same :class:`RunSettings` (same
    splits), which the harness guarantees when the same dataset, seed and
    fractions are used -- verified here via the settings.
    """
    if result_a.settings != result_b.settings:
        raise ConfigurationError(
            "results were produced under different settings; pairing is invalid"
        )
    if result_a.dataset_name != result_b.dataset_name:
        raise ConfigurationError("results cover different datasets")
    extractor = {
        "f1": lambda quality: quality.f1,
        "precision": lambda quality: quality.precision,
        "recall": lambda quality: quality.recall,
    }.get(metric)
    if extractor is None:
        raise ConfigurationError(f"unknown metric {metric!r}")
    scores_a = [extractor(quality) for quality in result_a.qualities]
    scores_b = [extractor(quality) for quality in result_b.qualities]
    return paired_permutation_test(scores_a, scores_b)
