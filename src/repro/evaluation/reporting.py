"""Plain-text rendering of experiment results (Table II style).

Besides the paper's quality tables, :func:`render_robustness_report`
surfaces the fault-tolerance telemetry -- skipped, failed, degraded and
resumed repetitions -- so partial failures are reported rather than
silently averaged away.
"""

from __future__ import annotations

from collections import defaultdict

from repro.evaluation.runner import ExperimentResult


def render_results_table(results: list[ExperimentResult]) -> str:
    """A flat table: one row per (system, dataset, fraction).

    Besides P/R/F1 the table surfaces the F1 spread and per-cell health
    (skipped/failed repetition counts), so a cell whose average hides
    bad repetitions is visible at a glance.  When any result carries
    candidate-generation stats (a blocked run), two extra columns show
    pair recall and the candidate reduction factor; unblocked tables
    keep the seed layout byte for byte.
    """
    blocked = any(result.pair_recall is not None for result in results)
    header = (
        f"{'system':<32} {'dataset':<12} {'train%':>6}  "
        f"{'P':>5} {'R':>5} {'F1':>5} {'±F1':>5}  "
        f"{'skip':>4} {'fail':>4} {'quar':>4}"
    )
    if blocked:
        header += f"  {'pairR':>6} {'redux':>6}"
    lines = [header, "-" * len(header)]
    for result in results:
        row = result.as_row()
        line = (
            f"{row['system']:<32} {row['dataset']:<12} "
            f"{row['train_fraction']:>6.0%}  "
            f"{row['precision']:>5.2f} {row['recall']:>5.2f} {row['f1']:>5.2f} "
            f"{row['f1_std']:>5.2f}  {row['skipped']:>4d} {row['failed']:>4d} "
            f"{row['quarantined']:>4d}"
        )
        if blocked:
            if result.pair_recall is not None:
                line += (
                    f"  {result.pair_recall:>6.4f}"
                    f" {result.reduction_ratio:>6.1%}"
                )
            else:
                line += f"  {'-':>6} {'-':>6}"
        lines.append(line)
    return "\n".join(lines)


def render_robustness_report(results: list[ExperimentResult]) -> str:
    """Per-cell health summary: completed/skipped/degraded/resumed/failures.

    Returns an empty string when every cell is fully healthy, so callers
    can print it unconditionally without adding noise to clean runs.
    """
    lines: list[str] = []
    for result in results:
        flags: list[str] = []
        if result.skipped_repetitions:
            flags.append(f"{result.skipped_repetitions} skipped")
        if result.quarantined_repetitions:
            flags.append(
                f"{result.quarantined_repetitions} quarantined "
                f"(crash/timeout poison)"
            )
        if result.degraded_repetitions:
            flags.append(f"{result.degraded_repetitions} degraded")
        if result.resumed_repetitions:
            flags.append(f"{result.resumed_repetitions} resumed")
        if not flags:
            continue
        lines.append(
            f"{result.matcher_name} on {result.dataset_name} "
            f"@{result.settings.train_fraction:.0%}: "
            f"{len(result.qualities)} completed, " + ", ".join(flags)
        )
        for failure in result.failures:
            lines.append(f"  - {failure.describe()}")
    if not lines:
        return ""
    return "robustness report:\n" + "\n".join(f"  {line}" for line in lines)


def format_table2(
    results: list[ExperimentResult],
    systems: list[str] | None = None,
    title: str = "",
) -> str:
    """Pivot results into the layout of the paper's Table II.

    Rows are (dataset, training fraction); columns are systems, each with
    a P/R/F1 triple.  The best F1 of every row is marked with ``*``, the
    paper's boldface.
    """
    cells: dict[tuple[str, float], dict[str, ExperimentResult]] = defaultdict(dict)
    ordered_systems: list[str] = list(systems) if systems else []
    for result in results:
        key = (result.dataset_name, result.settings.train_fraction)
        cells[key][result.matcher_name] = result
        if result.matcher_name not in ordered_systems:
            ordered_systems.append(result.matcher_name)
    column_width = 18
    header_parts = [f"{'dataset':<12} {'tr%':>4}"]
    header_parts.extend(f"{system[:column_width]:^{column_width}}" for system in ordered_systems)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(header_parts))
    lines.append("-" * len(lines[-1]))
    for (dataset, fraction), row in sorted(cells.items()):
        best_f1 = max((res.f1 for res in row.values()), default=0.0)
        parts = [f"{dataset:<12} {fraction:>4.0%}"]
        for system in ordered_systems:
            result = row.get(system)
            if result is None:
                parts.append(f"{'-':^{column_width}}")
                continue
            marker = "*" if result.f1 >= best_f1 and best_f1 > 0 else " "
            parts.append(
                f"{result.precision:>5.2f} {result.recall:>5.2f} "
                f"{result.f1:>5.2f}{marker}"
            )
        lines.append(" | ".join(parts))
    return "\n".join(lines)
