"""Markdown rendering of experiment results.

The plain-text tables of :mod:`repro.evaluation.reporting` suit terminal
runs; this module renders the same results as GitHub-flavoured markdown
for inclusion in reports like EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import defaultdict

from repro.evaluation.runner import ExperimentResult


def results_to_markdown(
    results: list[ExperimentResult],
    systems: list[str] | None = None,
    caption: str = "",
    bold_best: bool = True,
) -> str:
    """Render results as a markdown table in the layout of Table II.

    Rows are (dataset, training fraction); each system contributes a
    ``P / R / F1`` cell; the best F1 per row is bolded.
    """
    cells: dict[tuple[str, float], dict[str, ExperimentResult]] = defaultdict(dict)
    ordered_systems: list[str] = list(systems) if systems else []
    for result in results:
        cells[(result.dataset_name, result.settings.train_fraction)][
            result.matcher_name
        ] = result
        if result.matcher_name not in ordered_systems:
            ordered_systems.append(result.matcher_name)
    lines: list[str] = []
    if caption:
        lines.append(f"**{caption}**")
        lines.append("")
    header = ["dataset", "train %"] + ordered_systems
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "---|" * len(header))
    for (dataset, fraction), row in sorted(cells.items()):
        best_f1 = max((res.f1 for res in row.values()), default=0.0)
        rendered = [dataset, f"{fraction:.0%}"]
        for system in ordered_systems:
            result = row.get(system)
            if result is None:
                rendered.append("–")
                continue
            cell = f"{result.precision:.2f} / {result.recall:.2f} / {result.f1:.2f}"
            if bold_best and best_f1 > 0 and result.f1 >= best_f1:
                cell = f"**{cell}**"
            rendered.append(cell)
        lines.append("| " + " | ".join(rendered) + " |")
    return "\n".join(lines)


def summary_to_markdown(results: list[ExperimentResult]) -> str:
    """One bullet per result, with the F1 spread across repetitions."""
    lines = []
    for result in sorted(
        results, key=lambda r: (r.dataset_name, r.settings.train_fraction, r.matcher_name)
    ):
        lines.append(
            f"- `{result.matcher_name}` on **{result.dataset_name}** @ "
            f"{result.settings.train_fraction:.0%}: "
            f"F1 {result.f1:.2f} ± {result.f1_std:.2f} "
            f"(P {result.precision:.2f}, R {result.recall:.2f}, "
            f"{len(result.qualities)} reps)"
        )
    return "\n".join(lines)
