"""Precision-recall analysis over similarity scores.

The paper reports point metrics at the classifier's 0.5 decision; a
downstream user choosing a different operating point (high-precision
auto-fusion vs high-recall candidate generation) needs the whole curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DimensionError


@dataclass(frozen=True)
class PrecisionRecallCurve:
    """A precision-recall curve with the thresholds that produced it.

    Points are ordered by decreasing threshold; ``precisions[i]`` /
    ``recalls[i]`` are the metrics when predicting positive at
    ``scores >= thresholds[i]``.
    """

    thresholds: np.ndarray
    precisions: np.ndarray
    recalls: np.ndarray

    def __len__(self) -> int:
        return len(self.thresholds)

    @property
    def average_precision(self) -> float:
        """Area under the PR curve (step-wise, as recall increases)."""
        if len(self) == 0:
            return 0.0
        ap = 0.0
        previous_recall = 0.0
        for precision, recall in zip(self.precisions, self.recalls):
            ap += precision * max(0.0, recall - previous_recall)
            previous_recall = recall
        return float(ap)

    def best_f1(self) -> tuple[float, float]:
        """The best achievable F1 and the threshold achieving it."""
        if len(self) == 0:
            return 0.0, 0.5
        with np.errstate(divide="ignore", invalid="ignore"):
            f1 = 2 * self.precisions * self.recalls / (self.precisions + self.recalls)
        f1 = np.nan_to_num(f1)
        index = int(np.argmax(f1))
        return float(f1[index]), float(self.thresholds[index])

    def precision_at_recall(self, target_recall: float) -> float:
        """Best precision achievable at recall >= target (0 if unreachable)."""
        eligible = self.precisions[self.recalls >= target_recall]
        if len(eligible) == 0:
            return 0.0
        return float(eligible.max())


def precision_recall_curve(scores: np.ndarray, labels: np.ndarray) -> PrecisionRecallCurve:
    """Compute the PR curve of similarity scores against binary labels.

    One curve point per distinct score value, ordered by decreasing
    threshold, computed with a single sorted cumulative sweep.
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels).astype(bool)
    if scores.shape != labels.shape:
        raise DimensionError(
            f"shape mismatch: scores {scores.shape} vs labels {labels.shape}"
        )
    if len(scores) == 0 or not labels.any():
        return PrecisionRecallCurve(
            thresholds=np.zeros(0), precisions=np.zeros(0), recalls=np.zeros(0)
        )
    order = np.argsort(-scores, kind="stable")
    sorted_scores = scores[order]
    sorted_labels = labels[order]
    cumulative_tp = np.cumsum(sorted_labels)
    predicted = np.arange(1, len(scores) + 1)
    # Keep one point per distinct threshold: the *last* index of each run.
    distinct = np.nonzero(np.diff(sorted_scores, append=-np.inf))[0]
    total_positives = int(labels.sum())
    precisions = cumulative_tp[distinct] / predicted[distinct]
    recalls = cumulative_tp[distinct] / total_positives
    return PrecisionRecallCurve(
        thresholds=sorted_scores[distinct],
        precisions=precisions.astype(np.float64),
        recalls=recalls.astype(np.float64),
    )


def render_pr_curve(curve: PrecisionRecallCurve, width: int = 50) -> str:
    """ASCII rendering of a PR curve for terminal reports."""
    if len(curve) == 0:
        return "(empty curve)"
    lines = [f"AP={curve.average_precision:.3f}  (P vs R, one row per decile)"]
    for decile in np.linspace(0.1, 1.0, 10):
        precision = curve.precision_at_recall(decile)
        bar = "#" * int(round(precision * width))
        lines.append(f"  R>={decile:.1f}  P={precision:.2f} {bar}")
    return "\n".join(lines)
