"""Process-pool grid execution: parallel, byte-identical to serial.

``ExperimentRunner.run(workers=N)`` lands here.  The grid is flattened
into (cell, repetition) work items and fanned out to a
``ProcessPoolExecutor``; the parent consumes results **in serial grid
order** -- cells in dataset/fraction/matcher order, repetitions
ascending -- and is the only process that touches the journal.

Why the parallel grid is bit-identical to the serial one:

* every repetition's randomness derives from ``(seed, repetition
  [, attempt])`` alone -- the split from ``default_rng((seed,
  repetition))``, the training sample from ``default_rng([seed,
  repetition, 1709 + attempt-1])`` -- so a worker computes exactly the
  numbers the serial loop would;
* workers run the *same* ``_run_repetition`` function as the serial
  path and ship back picklable ``_Outcome`` records; the parent folds
  them into results and journals them with the same helpers the serial
  path uses, in the same order, so journal files match byte for byte;
* workers never write the journal: durability stays a single-writer,
  fsynced append stream, and resume semantics are unchanged (already
  journaled repetitions are restored in the parent and never
  submitted).

A ``BaseException`` escaping a repetition (e.g. the fault harness's
``SimulatedKill``) propagates from the worker through ``future.result()``
at that item's position in serial order; later completed items are
discarded unjournaled, leaving exactly the journal prefix a serial kill
would have left.

Workers keep per-process caches (matcher per cell, pair universe and
feature store per dataset).  With ``share_features=True`` under the
``fork`` start method the parent prebuilds universes and stores before
creating the pool; a prebuilt store is the staged pipeline's full
package -- the :class:`~repro.core.pipeline.FeatureSchema`, the
columnar float32 per-property stage outputs and the assembled
full-width matrix, all read-only -- so children inherit schema +
columns through copy-on-write pages rather than re-deriving ad-hoc
matrices, and the construction cost is paid exactly once per grid.
Under ``spawn`` each worker builds its own, at most once per dataset.

Prebuilt stores also enable **two-stage scoring**: a worker whose store
the parent holds runs pair build + fit only and ships back a
:class:`~repro.evaluation.runner._PendingScore` (the fitted classifier,
pre-pickled) instead of scoring.  The parent resolves pendings in
serial order after the pool drains (:class:`_ScoreResolver`), replaying
the deterministic test split against its own store's float64 scoring
shadow -- bit-identical features, so identical scores and journals.
Scoring in the parent runs uncontended: workers scoring concurrently
time-slice against each other and re-fault fresh feature upcasts per
process, which is exactly the score-phase regression this removes.

Failure model: the pool is run by
:class:`~repro.evaluation.supervisor.PoolSupervisor` -- a dead worker
respawns the pool and re-dispatches its items, a hung repetition is
killed at the ``cell_timeout`` deadline, poison items are quarantined as
structured ``failed`` journal records, and SIGINT/SIGTERM drain the
completed serial-order prefix into the journal before raising
:class:`~repro.errors.GridInterrupted`.  Completed outcomes are
journaled *progressively* (still in exact serial order, still only by
the parent), so even a hard parent kill leaves the longest durable
prefix rather than nothing.
"""

from __future__ import annotations

import multiprocessing
import pickle
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from queue import Empty
from time import perf_counter

import numpy as np

from repro.data.model import Dataset
from repro.data.splits import split_sources
from repro.errors import ConfigurationError, GridInterrupted
from repro.evaluation.checkpoint import (
    STATUS_FAILED,
    STATUS_OK,
    RunJournal,
    run_key,
)
from repro.evaluation.metrics import evaluate_scores
from repro.evaluation.runner import (
    ExperimentResult,
    PhaseTimings,
    RetryPolicy,
    RunSettings,
    _apply_journal_entry,
    _apply_outcome,
    _journal_outcome,
    _Outcome,
    _PendingScore,
    _run_repetition,
    blocked_test_quality,
    probe_policy_embeddings,
)
from repro.evaluation.supervisor import PoolSupervisor, SupervisorPolicy
from repro.nn.guards import assert_finite


@dataclass(frozen=True)
class GridCell:
    """One (dataset, fraction, matcher) cell of the flattened grid."""

    index: int
    dataset_index: int
    label: str
    settings: RunSettings


# Worker-process state, populated once by the pool initializer and
# extended lazily with per-cell matchers and per-dataset shared
# features.  Module-level because worker functions must be importable.
_STATE: dict = {}

# Shared features prebuilt by the parent just before forking the pool.
# Fork children inherit these via copy-on-write -- the store matrices
# are read-only, so the pages stay physically shared and no worker pays
# the construction cost again.  Empty under spawn, where children build
# their own.
_PREBUILT: dict = {}


def _init_worker_process(
    factories,
    datasets,
    retry_policy,
    share_features,
    start_queue=None,
    defer_scores=False,
    policy=None,
) -> None:
    """Pool initializer run *in the worker*: signals, then shared state.

    Workers ignore SIGINT (the parent's handler owns the Ctrl-C
    shutdown; workers are reaped by the supervisor) and reset SIGTERM to
    the default, since fork children would otherwise inherit the
    parent's drain-and-exit handler.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    _init_worker(
        factories,
        datasets,
        retry_policy,
        share_features,
        start_queue,
        defer_scores,
        policy,
    )


def _init_worker(
    factories,
    datasets,
    retry_policy,
    share_features,
    start_queue=None,
    defer_scores=False,
    policy=None,
) -> None:
    prebuilt_stores = dict(_PREBUILT.get("stores", ()))
    _STATE.clear()
    _STATE.update(
        factories=factories,
        datasets=datasets,
        retry_policy=retry_policy,
        share_features=share_features,
        start_queue=start_queue,
        defer_scores=defer_scores,
        policy=policy,
        # Keys whose store the *parent* also holds: only repetitions on
        # one of these may defer their score phase (the parent must be
        # able to gather the very same features).
        prebuilt_stores=frozenset(prebuilt_stores),
        matchers={},
        universes=dict(_PREBUILT.get("universes", ())),
        stores=prebuilt_stores,
    )


def _prebuild_shared(factories, datasets, dataset_indices, policy=None) -> None:
    """Build pair universes and feature stores once, in the parent.

    Only called when the pool uses the ``fork`` start method: children
    then find the results in ``_PREBUILT`` instead of each rebuilding
    them.  Stores are keyed by ``(dataset_index, id(embeddings))`` --
    ids survive fork, so a worker's factory-made matcher resolves the
    same key.  Matchers that do not support stores are skipped; they
    prepare per worker as before.  ``policy`` prunes the universes; an
    embedding-bucket policy resolves against the store-building
    matcher's own embeddings.
    """
    from repro.core.feature_cache import PairUniverse

    universes: dict = {}
    stores: dict = {}
    for dataset_index in sorted(dataset_indices):
        dataset = datasets[dataset_index]
        for label in factories:
            matcher = factories[label]()
            build = getattr(matcher, "build_feature_store", None)
            embeddings = getattr(matcher, "embeddings", None)
            if (
                build is None
                or embeddings is None
                or getattr(matcher, "attach_store", None) is None
            ):
                continue
            key = (dataset_index, id(embeddings))
            if key in stores:
                continue
            universe = universes.get(dataset_index)
            if universe is None:
                universe = universes[dataset_index] = PairUniverse(
                    dataset, policy, embeddings=embeddings
                )
            stores[key] = build(dataset, universe)
    _PREBUILT.clear()  # repro: noqa[REP008] parent-side by construction: runs strictly before the pool forks
    _PREBUILT.update(universes=universes, stores=stores)  # repro: noqa[REP008] pre-fork COW prebuild (see docstring)


def _worker_universe(dataset_index: int):
    universe = _STATE["universes"].get(dataset_index)
    if universe is None:
        from repro.core.feature_cache import PairUniverse

        policy = _STATE.get("policy")
        embeddings = None
        if policy is not None and not policy.is_null:
            embeddings = probe_policy_embeddings(_STATE["factories"])
        universe = PairUniverse(
            _STATE["datasets"][dataset_index], policy, embeddings=embeddings
        )
        _STATE["universes"][dataset_index] = universe
    return universe


def _worker_matcher(cell: GridCell):
    matcher = _STATE["matchers"].get(cell.index)
    if matcher is not None:
        return matcher
    dataset: Dataset = _STATE["datasets"][cell.dataset_index]
    matcher = _STATE["factories"][cell.label]()
    attach = getattr(matcher, "attach_store", None)
    build = getattr(matcher, "build_feature_store", None)
    embeddings = getattr(matcher, "embeddings", None)
    if (
        _STATE["share_features"]
        and attach is not None
        and build is not None
        and embeddings is not None
    ):
        store_key = (cell.dataset_index, id(embeddings))
        store = _STATE["stores"].get(store_key)
        if store is None:
            store = _STATE["stores"][store_key] = build(
                dataset, _worker_universe(cell.dataset_index)
            )
        attach(store)
    else:
        matcher.prepare(dataset)
    _STATE["matchers"][cell.index] = matcher
    return matcher


def _execute_item(cell: GridCell, repetition: int):
    """Worker entry point: run one repetition, return its ``_Outcome``.

    The split is recomputed locally from ``(seed, repetition)`` --
    identical to the serial loop's stream by construction.  The first
    act is reporting the start to the supervisor's channel, so the
    ``--cell-timeout`` clock measures this repetition's own run time,
    never queueing or pool start-up.
    """
    start_queue = _STATE.get("start_queue")
    if start_queue is not None:
        try:
            start_queue.put((cell.index, repetition))
        except Exception:  # pragma: no cover # repro: noqa[REP005] start-report is best-effort; a worker must never die for telemetry
            pass
    dataset: Dataset = _STATE["datasets"][cell.dataset_index]
    rng = np.random.default_rng((cell.settings.seed, repetition))
    split = split_sources(dataset, cell.settings.train_fraction, rng)
    universe = (
        _worker_universe(cell.dataset_index) if _STATE["share_features"] else None
    )
    matcher = _worker_matcher(cell)
    defer_key = None
    if _STATE.get("defer_scores"):
        embeddings = getattr(matcher, "embeddings", None)
        store = getattr(matcher, "store", None)
        if embeddings is not None and store is not None:
            key = (cell.dataset_index, id(embeddings))
            # ids survive fork, so "same key + same object" proves the
            # parent holds this very store and can score against it.
            if key in _STATE["prebuilt_stores"] and store is _STATE["stores"].get(key):
                defer_key = key
    return _run_repetition(
        matcher,
        dataset,
        cell.settings,
        repetition,
        split,
        _STATE["retry_policy"],
        time.sleep,
        universe=universe,
        defer_key=defer_key,
    )


def _pool_context():
    """Prefer ``fork``: cheap start-up and no pickling of factories."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _quarantine_outcome(item: tuple[int, int], reason: str, faults: int) -> _Outcome:
    """The structured failure recorded for a quarantined (cell, rep) item."""
    return _Outcome(
        status=STATUS_FAILED,
        error_type=reason,
        error_message=(
            f"quarantined by the pool supervisor after {faults} "
            f"{reason} fault(s)"
        ),
        attempts=faults,
    )


def run_grid_parallel(
    factories: dict[str, "callable"],
    datasets: list[Dataset],
    *,
    train_fractions: tuple[float, ...],
    repetitions: int,
    seed: int,
    negative_ratio: float,
    journal: RunJournal | None,
    resume: bool,
    retry_policy: RetryPolicy | None,
    workers: int,
    share_features: bool,
    supervisor: SupervisorPolicy | None = None,
    candidate_policy=None,
) -> list[ExperimentResult]:
    """Run the experiment grid on ``workers`` supervised processes.

    Returns the same ``ExperimentResult`` list, with the same journal
    side effects, as the serial ``ExperimentRunner.run`` -- only faster.
    ``supervisor`` tunes the failure model (worker-death respawns,
    per-item deadlines, poison quarantine); the defaults match PR 2's
    behaviour on healthy grids byte for byte.
    """
    if workers < 2:
        raise ConfigurationError("run_grid_parallel needs workers >= 2")
    retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
    policy = supervisor if supervisor is not None else SupervisorPolicy()

    cells: list[GridCell] = []
    results: list[ExperimentResult] = []
    keys: list[str | None] = []
    restored: list[dict] = []
    for dataset_index, dataset in enumerate(datasets):
        for fraction in train_fractions:
            settings = RunSettings(
                train_fraction=fraction,
                repetitions=repetitions,
                negative_ratio=negative_ratio,
                seed=seed,
            )
            for label in factories:
                cell = GridCell(
                    index=len(cells),
                    dataset_index=dataset_index,
                    label=label,
                    settings=settings,
                )
                cells.append(cell)
                results.append(
                    ExperimentResult(
                        matcher_name=label,
                        dataset_name=dataset.name,
                        settings=settings,
                    )
                )
                key = (
                    run_key(label, dataset, settings)
                    if journal is not None
                    else None
                )
                keys.append(key)
                restored.append(
                    journal.entries(key)
                    if (journal is not None and resume)
                    else {}
                )

    # Serial grid order: cells outermost, repetitions innermost.
    pending: list[tuple[int, int]] = [
        (cell.index, repetition)
        for cell in cells
        for repetition in range(repetitions)
        if not (
            (entry := restored[cell.index].get(repetition)) is not None
            and entry.status != STATUS_FAILED
        )
    ]

    drain = _SerialDrain(cells, results, keys, restored, journal)
    outcomes: dict[tuple[int, int], object] = {}
    #: Blocked universes the parent holds (prebuilt or stats-only);
    #: reused for the per-result pair-recall/reduction annotation.
    parent_universes: dict[int, object] = {}

    def on_complete(item: tuple[int, int], outcome) -> None:
        # Progressive drain: each completion extends the journaled
        # serial-order prefix as far as it now reaches, so the journal
        # grows during the run exactly as a serial run's would.
        outcomes[item] = outcome
        drain.advance(outcomes)

    defer_scores = False
    if pending:
        context = _pool_context()
        if share_features and context.get_start_method() == "fork":
            _prebuild_shared(
                factories,
                datasets,
                {cells[index].dataset_index for index, _ in pending},
                candidate_policy,
            )
            parent_universes.update(_PREBUILT["universes"])
            # Two-stage execution: workers fit, the parent scores after
            # the drain.  Only meaningful when there is a prebuilt store
            # the parent can gather the same features from.
            defer_scores = bool(_PREBUILT["stores"])
            if defer_scores:
                drain.resolver = _ScoreResolver(
                    cells,
                    datasets,
                    _PREBUILT["universes"],
                    _PREBUILT["stores"],
                )
        stop = threading.Event()
        received_signum: int | None = None

        def _on_signal(signum, frame) -> None:
            # Async-signal-safe: a plain nonlocal rebind (last signal
            # wins) instead of a list append inside the handler.
            nonlocal received_signum
            received_signum = signum
            stop.set()

        installed: dict[int, object] = {}
        if threading.current_thread() is threading.main_thread():
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    installed[signum] = signal.signal(signum, _on_signal)
                except (ValueError, OSError):  # pragma: no cover
                    pass

        # Workers report the (cell, repetition) they are *about to run*
        # on this queue; the supervisor's deadline clock starts at that
        # report, not at submission.  One fresh queue per pool
        # generation, so a dead generation's reports can never start
        # the clock on a re-dispatched item.
        start_queue_box: list = [None]

        def make_pool() -> ProcessPoolExecutor:
            start_queue_box[0] = context.Queue()
            return ProcessPoolExecutor(
                max_workers=min(workers, len(pending)),
                mp_context=context,
                initializer=_init_worker_process,
                initargs=(
                    factories,
                    datasets,
                    retry_policy,
                    share_features,
                    start_queue_box[0],
                    defer_scores,
                    candidate_policy,
                ),
            )

        def poll_started() -> list[tuple[int, int]]:
            started: list[tuple[int, int]] = []
            start_queue = start_queue_box[0]
            while start_queue is not None:
                try:
                    started.append(start_queue.get_nowait())
                except Empty:
                    break
            return started

        serial_fallback_ready = False

        def run_serial(item: tuple[int, int]):
            # Degraded path: execute in the parent, reusing the worker
            # entry point against parent-local (or prebuilt) state.
            nonlocal serial_fallback_ready
            if not serial_fallback_ready:
                _init_worker(
                    factories, datasets, retry_policy, share_features,
                    policy=candidate_policy,
                )
                serial_fallback_ready = True
            return _execute_item(cells[item[0]], item[1])

        pool_supervisor = PoolSupervisor(
            pending,
            make_pool=make_pool,
            submit=lambda pool, item: pool.submit(
                _execute_item, cells[item[0]], item[1]
            ),
            on_complete=on_complete,
            quarantine_outcome=_quarantine_outcome,
            run_serial=run_serial,
            window=min(workers, len(pending)),
            policy=policy,
            stop=stop,
            poll_started=poll_started,
        )
        try:
            try:
                pool_supervisor.run()
            except GridInterrupted as interrupted:
                # Outcomes harvested during shutdown are already
                # journaled by the progressive drain -- except deferred
                # scores, whose training effort is preserved by scoring
                # them now, before the prefix is sealed.  Attach the
                # signal for the caller's exit code.
                drain.enable_resolution()
                drain.advance(outcomes)
                interrupted.signum = received_signum
                raise
        finally:
            _PREBUILT.clear()  # repro: noqa[REP008] post-run cleanup: the pool is gone, no child can observe this
            if serial_fallback_ready:
                _STATE.clear()  # repro: noqa[REP008] degraded-serial state lives in the parent by design
            for signum, previous in installed.items():
                signal.signal(signum, previous)

    drain.enable_resolution()
    drain.advance(outcomes)
    if candidate_policy is not None and not candidate_policy.is_null:
        # Annotate every cell with the candidate-generation quality of
        # its dataset's pruned universe.  Prebuilt universes are reused;
        # datasets that never prebuilt one (spawn, or fully resumed
        # runs) get a stats-only universe built here in the parent.
        from repro.core.feature_cache import PairUniverse

        for cell, result in zip(cells, results):
            universe = parent_universes.get(cell.dataset_index)
            if universe is None:
                universe = parent_universes[cell.dataset_index] = PairUniverse(
                    datasets[cell.dataset_index],
                    candidate_policy,
                    embeddings=probe_policy_embeddings(factories),
                )
            stats = universe.blocking_stats()
            result.pair_recall = stats["pair_recall"]
            result.reduction_ratio = stats["reduction_ratio"]
    return results


class _ScoreResolver:
    """Parent-side completion of deferred score phases.

    Workers whose feature store was prebuilt by the parent ship back a
    :class:`_PendingScore` -- training done, scoring not -- and the
    parent finishes each one here, after the pool has drained, so the
    score phase runs uncontended instead of time-slicing against
    sibling workers.  The test split is replayed deterministically from
    ``(seed, repetition)``, features come from the store's float64
    scoring shadow (bit-identical to the worker's own upcast), so
    scores, qualities and journals match the serial grid byte for byte.

    The resolver keeps direct references to the prebuilt universes and
    stores: resolution happens after ``_PREBUILT`` has been cleared.
    """

    def __init__(self, cells, datasets, universes, stores) -> None:
        self._cells = cells
        self._datasets = datasets
        self._universes = dict(universes)
        self._stores = dict(stores)

    def resolve_pending(
        self, cell_index: int, repetition: int, pending: _PendingScore
    ) -> _Outcome:
        from repro.core.config import FeatureConfig

        cell = self._cells[cell_index]
        timings = (
            pending.timings if pending.timings is not None else PhaseTimings()
        )
        try:
            dataset = self._datasets[cell.dataset_index]
            rng = np.random.default_rng((cell.settings.seed, repetition))
            split = split_sources(dataset, cell.settings.train_fraction, rng)
            universe = self._universes[cell.dataset_index]
            store = self._stores[pending.store_key]
            config = FeatureConfig.from_label(pending.config_label)
            classifier = pickle.loads(pending.classifier)
            started = perf_counter()
            test = universe.subset(list(split.train_sources), within=False)
            timings.pair_build += perf_counter() - started
            started = perf_counter()
            features = store.scoring_features(test.pairs, config)
            timings.feature_assembly += perf_counter() - started
            started = perf_counter()
            scores = classifier.match_scores(features)
            timings.score += perf_counter() - started
            assert_finite(scores, "similarity scores")
            quality = evaluate_scores(scores, test.labels(), pending.threshold)
            if universe.is_blocked:
                quality = blocked_test_quality(
                    quality, universe, list(split.train_sources)
                )
            return _Outcome(
                status=STATUS_OK,
                quality=quality,
                degradation=pending.degradation,
                attempts=pending.attempts,
                timings=timings,
            )
        except Exception as error:  # noqa: BLE001 -- isolation boundary
            return _Outcome(
                status=STATUS_FAILED,
                error_type=type(error).__name__,
                error_message=str(error),
                attempts=pending.attempts,
                timings=timings,
            )


class _SerialDrain:
    """Incremental serial-order fold of restored entries and outcomes.

    Maintains a cursor over the flattened (cell, repetition) grid.  Each
    :meth:`advance` applies journal-restored entries and any available
    outcomes from the cursor forward, journaling executed outcomes in
    the parent in exactly the order the serial runner would emit them,
    and stops at the first item that is neither restored nor completed.
    Progressive calls therefore never double-apply anything.

    A :class:`_PendingScore` at the cursor stalls the drain while the
    pool is still running (its scoring must wait for an idle parent);
    once :meth:`enable_resolution` is called -- after the pool drains,
    or while journaling the prefix of an interrupted run -- pendings
    are resolved in serial order through the attached resolver.
    """

    def __init__(
        self,
        cells: list[GridCell],
        results: list[ExperimentResult],
        keys: list[str | None],
        restored: list[dict],
        journal: RunJournal | None,
    ) -> None:
        self._results = results
        self._keys = keys
        self._restored = restored
        self._journal = journal
        self._slots: list[tuple[int, int]] = [
            (cell.index, repetition)
            for cell in cells
            for repetition in range(cell.settings.repetitions)
        ]
        self._position = 0
        self.resolver: _ScoreResolver | None = None
        self._resolve = False

    def enable_resolution(self) -> None:
        """Allow pendings at the cursor to be scored (pool is drained)."""
        self._resolve = True

    def advance(self, outcomes: dict[tuple[int, int], object]) -> None:
        while self._position < len(self._slots):
            cell_index, repetition = self._slots[self._position]
            entry = self._restored[cell_index].get(repetition)
            if entry is not None and entry.status != STATUS_FAILED:
                _apply_journal_entry(self._results[cell_index], entry)
                self._position += 1
                continue
            outcome = outcomes.get((cell_index, repetition))
            if outcome is None:
                return
            if isinstance(outcome, _PendingScore):
                if not self._resolve or self.resolver is None:
                    return
                outcome = self.resolver.resolve_pending(
                    cell_index, repetition, outcome
                )
            del outcomes[(cell_index, repetition)]
            _apply_outcome(self._results[cell_index], repetition, outcome)
            if self._journal is not None:
                _journal_outcome(
                    self._journal, self._keys[cell_index], repetition, outcome
                )
            self._position += 1
