"""Transfer learning: train on one product domain, test on another.

Section V announces "we ... study the use of transfer learning" (the
detailed protocol lives in the paper's extended arXiv version): a matcher
trained on the property pairs of one domain is applied unchanged to a
different domain.  This works in LEAPME's favour because its features are
domain-independent *shapes* (embedding differences, string distances),
not domain vocabularies -- provided the embedding space covers both
domains, as a single pre-trained GloVe does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.api import Matcher
from repro.data.model import Dataset
from repro.data.pairs import build_pairs, sample_training_pairs
from repro.evaluation.metrics import MatchQuality, evaluate_scores


@dataclass(frozen=True)
class TransferResult:
    """Quality of a source-domain-trained matcher on a target domain."""

    source_dataset: str
    target_dataset: str
    matcher_name: str
    quality: MatchQuality

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"{self.matcher_name}: {self.source_dataset} -> {self.target_dataset}: "
            f"P={self.quality.precision:.2f} R={self.quality.recall:.2f} "
            f"F1={self.quality.f1:.2f}"
        )


def run_transfer_experiment(
    matcher: Matcher,
    source: Dataset,
    target: Dataset,
    negative_ratio: float = 2.0,
    seed: int = 0,
) -> TransferResult:
    """Train on all of ``source``, evaluate on all pairs of ``target``.

    The matcher must share one embedding space across both domains (build
    it with ``build_domain_embeddings([source, target])``).
    """
    rng = np.random.default_rng([seed, 2207])
    if matcher.is_supervised:
        matcher.prepare(source)
        candidates = build_pairs(source)
        training = sample_training_pairs(candidates, negative_ratio, rng)
        matcher.fit(source, training)
    matcher.prepare(target)
    test = build_pairs(target)
    scores = matcher.score_pairs(target, test.pairs)
    quality = evaluate_scores(scores, test.labels(), matcher.threshold)
    return TransferResult(
        source_dataset=source.name,
        target_dataset=target.name,
        matcher_name=matcher.name,
        quality=quality,
    )
