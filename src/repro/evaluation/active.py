"""Active learning: spend the labelling budget where it matters.

The paper stresses that LEAPME's "improvements are even achieved for
relatively little training data"; active learning pushes that further by
*choosing* which property pairs to label.  Uncertainty sampling is the
classic strategy: repeatedly train on the labelled pool, score the
unlabelled pool, and request labels for the pairs the classifier is
least sure about (score closest to the decision boundary).

This module implements the simulation harness: ground truth plays the
role of the human annotator, and the output is a learning curve
(labels spent -> F1 on a held-out pair set) for any
:class:`~repro.core.api.Matcher`-compatible supervised matcher.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.api import Matcher
from repro.data.model import Dataset
from repro.data.pairs import LabeledPair, PairSet
from repro.errors import ConfigurationError
from repro.metrics import MatchQuality, evaluate_scores


@dataclass(frozen=True)
class ActiveLearningCurve:
    """Learning curve of one labelling strategy."""

    strategy: str
    budgets: tuple[int, ...]
    f1_scores: tuple[float, ...]

    def final_f1(self) -> float:
        """F1 at the largest budget."""
        return self.f1_scores[-1] if self.f1_scores else 0.0

    def describe(self) -> str:
        """One-line summary."""
        points = ", ".join(
            f"{budget}:{f1:.2f}" for budget, f1 in zip(self.budgets, self.f1_scores)
        )
        return f"{self.strategy}: {points}"


def _seed_pool(
    pool: list[LabeledPair], seed_size: int, rng: np.random.Generator
) -> list[int]:
    """A class-balanced starting pool (annotators always seed with both)."""
    positives = [i for i, pair in enumerate(pool) if pair.label]
    negatives = [i for i, pair in enumerate(pool) if not pair.label]
    if not positives or not negatives:
        raise ConfigurationError("pool must contain both classes")
    half = max(1, seed_size // 2)
    chosen_pos = rng.choice(len(positives), size=min(half, len(positives)), replace=False)
    chosen_neg = rng.choice(len(negatives), size=min(half, len(negatives)), replace=False)
    return [positives[int(i)] for i in chosen_pos] + [
        negatives[int(i)] for i in chosen_neg
    ]


def run_active_learning(
    matcher: Matcher,
    dataset: Dataset,
    pool: PairSet,
    evaluation: PairSet,
    budgets: list[int],
    strategy: str = "uncertainty",
    seed_size: int = 10,
    rng: np.random.Generator | None = None,
) -> ActiveLearningCurve:
    """Simulate a labelling campaign and return the learning curve.

    Parameters
    ----------
    matcher:
        A supervised matcher; re-fitted at every budget checkpoint.
    pool:
        The unlabelled pool the annotator draws from (ground-truth labels
        are revealed as pairs are selected).
    evaluation:
        Held-out pairs scored at every checkpoint.
    budgets:
        Increasing label counts at which to record F1 (including the seed).
    strategy:
        ``"uncertainty"`` (closest to the decision threshold first) or
        ``"random"`` (the baseline).
    """
    if strategy not in ("uncertainty", "random"):
        raise ConfigurationError(f"unknown strategy {strategy!r}")
    if sorted(budgets) != list(budgets) or not budgets:
        raise ConfigurationError("budgets must be a non-empty increasing list")
    if budgets[0] < seed_size:
        raise ConfigurationError("first budget must cover the seed pool")
    rng = rng if rng is not None else np.random.default_rng(0)
    matcher.prepare(dataset)
    labelled = _seed_pool(pool.pairs, seed_size, rng)
    labelled_set = set(labelled)
    f1_scores: list[float] = []
    for budget in budgets:
        while len(labelled) < min(budget, len(pool.pairs)):
            unlabelled = [i for i in range(len(pool.pairs)) if i not in labelled_set]
            if not unlabelled:
                break
            if strategy == "random":
                pick = unlabelled[int(rng.integers(len(unlabelled)))]
            else:
                matcher.fit(dataset, PairSet([pool.pairs[i] for i in labelled]))
                scores = matcher.score_pairs(
                    dataset, [pool.pairs[i] for i in unlabelled]
                )
                # Most uncertain = closest to the decision threshold; take a
                # small batch per refit to keep the simulation tractable.
                order = np.argsort(np.abs(scores - matcher.threshold))
                batch = min(10, min(budget, len(pool.pairs)) - len(labelled))
                for position in order[:batch]:
                    pick = unlabelled[int(position)]
                    labelled.append(pick)
                    labelled_set.add(pick)
                continue
            labelled.append(pick)
            labelled_set.add(pick)
        matcher.fit(dataset, PairSet([pool.pairs[i] for i in labelled]))
        scores = matcher.score_pairs(dataset, evaluation.pairs)
        quality: MatchQuality = evaluate_scores(
            scores, evaluation.labels(), matcher.threshold
        )
        f1_scores.append(quality.f1)
    return ActiveLearningCurve(
        strategy=strategy,
        budgets=tuple(budgets),
        f1_scores=tuple(f1_scores),
    )
