"""The experiment runner: repeated source splits, training, scoring.

Implements the protocol of Section V-B:

* "We take a fraction of the sources of a dataset (at random) for
  training.  We use the examples that involve two sources of data in the
  training set to train the classifier, and test it with the rest."
* "the training data consists of two negative pairs ... for every
  positive pair"
* "for each dataset, we ran LEAPME 25 times, using different random
  combinations of training sources" (repetitions are configurable; the
  benchmark defaults use fewer for wall-clock reasons and the paper
  value via the ``paper`` scale).

Fault tolerance
---------------
Long grids must survive bad repetitions and process kills:

* every repetition runs inside failure isolation -- an exception is
  retried under a :class:`RetryPolicy` (deterministic reseeding,
  exponential backoff hook) and, if retries are exhausted, recorded as a
  structured :class:`RepetitionFailure` instead of aborting siblings;
* with a :class:`~repro.evaluation.checkpoint.RunJournal`, each
  repetition's outcome is durably appended as it completes, and a rerun
  resumes from the journal, re-executing only what is missing or
  previously failed (journaled failures get a fresh attempt).  Because
  each repetition derives its randomness from ``(seed, repetition)``
  alone, a resumed grid is bit-identical to an uninterrupted one.

Performance
-----------
The grid is cache-aware and parallelisable:

* with ``share_features=True`` (the default), each dataset's
  cross-source pair universe is enumerated once
  (:class:`~repro.core.feature_cache.PairUniverse`) and matchers that
  support it share one full-width
  :class:`~repro.core.feature_cache.PairFeatureStore` per
  (dataset, embeddings), so the nine feature configurations become
  column slices of one matrix instead of nine recomputations;
* ``ExperimentRunner.run(workers=N)`` fans (cell, repetition) work
  items out to a process pool (:mod:`repro.evaluation.parallel`);
  because repetition randomness derives only from ``(seed,
  repetition[, attempt])`` and the parent applies and journals
  outcomes in serial order, the parallel grid is byte-identical to the
  serial one;
* every executed repetition reports per-phase wall-clock
  (:class:`PhaseTimings`), aggregated on the
  :class:`ExperimentResult`, so speedups are measured rather than
  asserted (``scripts/bench_grid.py``).
"""

from __future__ import annotations

import hashlib
import pickle
import time
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.core.api import Matcher
from repro.data.model import Dataset
from repro.data.pairs import build_pairs, sample_training_pairs
from repro.data.splits import repeated_source_splits
from repro.errors import ConfigurationError
from repro.evaluation.checkpoint import (
    QUARANTINE_REASONS,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    JournalEntry,
    RunJournal,
    run_key,
)
from repro.evaluation.metrics import MatchQuality, evaluate_scores, mean_quality
from repro.nn.guards import assert_finite

_SKIP_NO_POSITIVES = "no positive/negative training pairs in split"


@dataclass(frozen=True)
class RunSettings:
    """Protocol parameters for one experiment."""

    train_fraction: float = 0.2
    repetitions: int = 5
    negative_ratio: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.train_fraction < 1.0:
            raise ConfigurationError("train_fraction must be in (0, 1)")
        if self.repetitions < 1:
            raise ConfigurationError("repetitions must be >= 1")
        if self.negative_ratio < 0:
            raise ConfigurationError("negative_ratio must be >= 0")


@dataclass(frozen=True)
class RetryPolicy:
    """How a failing repetition is retried before being recorded as failed.

    Each retry reseeds the training-pair sampler deterministically from
    ``(seed, repetition, attempt)``, so a transient numeric failure on
    one draw gets a genuinely different (but reproducible) draw, and two
    machines running the same grid behave identically.  ``backoff_base``
    seconds (doubling per attempt) are slept between attempts when
    positive -- the hook for rate-limited or I/O-bound matchers; the
    default of zero keeps tests and CPU-bound grids fast.

    ``jitter`` spreads concurrent retries apart: the delay before an
    attempt is stretched by up to ``jitter * 100`` percent, with the
    stretch a *pure function* of ``(seed, repetition, attempt)`` -- no
    global RNG is consulted -- so serial and parallel grids sleep
    identical amounts and parity with the serial path is preserved.
    """

    max_retries: int = 1
    backoff_base: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.backoff_base < 0:
            raise ConfigurationError("backoff_base must be >= 0")
        if self.jitter < 0:
            raise ConfigurationError("jitter must be >= 0")

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def delay(self, attempt: int, *, seed: int = 0, repetition: int = 0) -> float:
        """Seconds to wait before retry ``attempt`` (1-based).

        Exponential in ``attempt``; with ``jitter`` > 0 the result is
        ``base * (1 + jitter * u)`` where ``u`` in [0, 1) is derived by
        hashing ``(seed, repetition, attempt)``, making the delay
        deterministic and bounded by ``base * (1 + jitter)``.
        """
        if self.backoff_base <= 0:
            return 0.0
        base = self.backoff_base * (2.0 ** (attempt - 1))
        if self.jitter <= 0:
            return base
        digest = hashlib.sha256(
            f"{seed}:{repetition}:{attempt}".encode("utf-8")
        ).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2.0**64
        return base * (1.0 + self.jitter * fraction)


@dataclass
class PhaseTimings:
    """Wall-clock seconds per phase of executed repetitions.

    ``train`` and ``score`` exclude the feature-assembly share when the
    matcher reports it (``matcher.feature_seconds``), so the breakdown
    sums to roughly the repetition wall-clock without double counting.
    Timings are measurement, not protocol: they are never journaled and
    resumed repetitions contribute nothing.
    """

    pair_build: float = 0.0
    feature_assembly: float = 0.0
    train: float = 0.0
    score: float = 0.0

    def merge(self, other: "PhaseTimings") -> None:
        self.pair_build += other.pair_build
        self.feature_assembly += other.feature_assembly
        self.train += other.train
        self.score += other.score

    @property
    def total(self) -> float:
        return self.pair_build + self.feature_assembly + self.train + self.score

    def as_dict(self) -> dict[str, float]:
        return {
            "pair_build": self.pair_build,
            "feature_assembly": self.feature_assembly,
            "train": self.train,
            "score": self.score,
            "total": self.total,
        }


@dataclass(frozen=True)
class RepetitionFailure:
    """A repetition that exhausted its retries (structured, not a string)."""

    repetition: int
    error_type: str
    message: str
    attempts: int

    def describe(self) -> str:
        return (
            f"repetition {self.repetition}: {self.error_type}: {self.message} "
            f"(after {self.attempts} attempt(s))"
        )


@dataclass
class ExperimentResult:
    """Per-repetition qualities for one (matcher, dataset, settings) cell."""

    matcher_name: str
    dataset_name: str
    settings: RunSettings
    qualities: list[MatchQuality] = field(default_factory=list)
    #: Repetitions that produced no quality: unusable training splits
    #: plus repetitions whose failures exhausted the retry policy.
    skipped_repetitions: int = 0
    #: Structured records for the failed subset of ``skipped_repetitions``.
    failures: list[RepetitionFailure] = field(default_factory=list)
    #: Repetitions that completed only via degraded training
    #: (reduced learning rate or classical-classifier fallback).
    degraded_repetitions: int = 0
    #: Repetitions restored from a journal instead of being re-run.
    resumed_repetitions: int = 0
    #: Per-phase wall-clock of the repetitions actually executed here.
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    #: Candidate-generation quality, set only when the cell ran against
    #: a blocked pair universe: fraction of true matches the policy kept
    #: (against the *full* ground truth) and fraction of the cross
    #: product pruned.  ``None`` under the null policy.
    pair_recall: float | None = None
    reduction_ratio: float | None = None

    @property
    def precision(self) -> float:
        return mean_quality(self.qualities)[0]

    @property
    def recall(self) -> float:
        return mean_quality(self.qualities)[1]

    @property
    def f1(self) -> float:
        return mean_quality(self.qualities)[2]

    @property
    def f1_std(self) -> float:
        """Standard deviation of F1 across repetitions."""
        if not self.qualities:
            return 0.0
        return float(np.std([quality.f1 for quality in self.qualities]))

    @property
    def quarantined_repetitions(self) -> int:
        """Failures written by the pool supervisor (crash/timeout poison).

        A subset of ``failures``: repetitions that repeatedly killed or
        hung a worker process and were quarantined rather than retried
        forever.  Like all ``failed`` records they are re-attempted on a
        resumed run.
        """
        return sum(
            1
            for failure in self.failures
            if failure.error_type in QUARANTINE_REASONS
        )

    def as_row(self) -> dict:
        """Flat dict for table rendering."""
        row = {
            "system": self.matcher_name,
            "dataset": self.dataset_name,
            "train_fraction": self.settings.train_fraction,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "f1_std": self.f1_std,
            "skipped": self.skipped_repetitions,
            "failed": len(self.failures),
            "quarantined": self.quarantined_repetitions,
        }
        if self.pair_recall is not None:
            row["pair_recall"] = self.pair_recall
        if self.reduction_ratio is not None:
            row["reduction_ratio"] = self.reduction_ratio
        return row

    def describe(self) -> str:
        """One-line summary."""
        text = (
            f"{self.matcher_name} on {self.dataset_name} "
            f"@{self.settings.train_fraction:.0%}: "
            f"P={self.precision:.2f} R={self.recall:.2f} F1={self.f1:.2f} "
            f"({len(self.qualities)} reps)"
        )
        health = []
        if self.skipped_repetitions:
            health.append(f"{self.skipped_repetitions} skipped")
        if self.quarantined_repetitions:
            health.append(f"{self.quarantined_repetitions} quarantined")
        if self.degraded_repetitions:
            health.append(f"{self.degraded_repetitions} degraded")
        if self.resumed_repetitions:
            health.append(f"{self.resumed_repetitions} resumed")
        if health:
            text += f" [{', '.join(health)}]"
        if self.pair_recall is not None and self.reduction_ratio is not None:
            text += (
                f" (blocking: pair recall {self.pair_recall:.2%}, "
                f"reduction {self.reduction_ratio:.2%})"
            )
        return text


@dataclass(frozen=True)
class _PendingScore:
    """A repetition whose training finished but whose scoring is deferred.

    Shipped from a pool worker to the parent instead of an
    :class:`_Outcome` when the parallel grid runs with shared prebuilt
    feature stores (see :mod:`repro.evaluation.parallel`): the worker
    does the expensive pair build and fit, the parent replays the
    deterministic test split against its own store and scores
    uncontended after the pool drains.  ``classifier`` is the fitted
    classifier, pre-pickled in the worker so an unpicklable one is
    detected there (and scoring falls back in-worker) rather than
    poisoning the result channel.
    """

    classifier: bytes
    threshold: float
    config_label: str
    store_key: tuple
    degradation: str | None
    attempts: int
    timings: PhaseTimings


def _pending_score(matcher, store_key: tuple, attempts: int, timings: PhaseTimings):
    """Build the deferred-score record, or ``None`` to score in-worker."""
    try:
        payload = pickle.dumps(matcher.classifier)
        config_label = matcher.feature_config.label()
        threshold = float(matcher.threshold)
    except Exception:  # repro: noqa[REP005] deferral is an optimisation: anything unshippable scores in-worker instead
        return None
    return _PendingScore(
        classifier=payload,
        threshold=threshold,
        config_label=config_label,
        store_key=store_key,
        degradation=getattr(matcher, "last_degradation", None),
        attempts=attempts,
        timings=timings,
    )


@dataclass(frozen=True)
class _Outcome:
    """Internal: what one repetition produced after isolation/retries.

    Fully picklable (errors are carried as strings, not exception
    objects) so parallel workers can ship outcomes back to the parent.
    """

    status: str
    quality: MatchQuality | None = None
    degradation: str | None = None
    attempts: int = 1
    error_type: str | None = None
    error_message: str | None = None
    skip_reason: str | None = None
    timings: PhaseTimings | None = None


def _matcher_feature_seconds(matcher: Matcher) -> float:
    seconds = getattr(matcher, "feature_seconds", 0.0)
    return seconds if isinstance(seconds, (int, float)) else 0.0


def blocked_test_quality(
    quality: MatchQuality, universe, train_sources: list[str]
) -> MatchQuality:
    """Fold pruned true matches of the test slice into the quality.

    Under a blocking policy the scored test pairs come from the pruned
    universe, so a true match the blocker never proposed would otherwise
    vanish from the denominator.  Counting every pruned true pair of the
    held-out slice as a false negative keeps recall -- and therefore F1
    -- honest against the full ground truth.  A no-op under the null
    policy (``missed_true_pairs`` is zero by construction).
    """
    missed = universe.missed_true_pairs(train_sources, within=False)
    if not missed:
        return quality
    return MatchQuality(
        true_positives=quality.true_positives,
        false_positives=quality.false_positives,
        false_negatives=quality.false_negatives + missed,
    )


def _run_repetition(
    matcher: Matcher,
    dataset: Dataset,
    settings: RunSettings,
    repetition: int,
    split,
    retry_policy: RetryPolicy,
    sleep,
    universe=None,
    defer_key: tuple | None = None,
) -> _Outcome | _PendingScore:
    """One repetition under failure isolation and the retry policy.

    Only :class:`Exception` is caught: ``KeyboardInterrupt`` and other
    ``BaseException`` kills (including the fault harness's simulated
    ones) propagate, exactly like a real ``SIGKILL`` would end the
    process -- the journal then carries the completed prefix.

    With ``universe`` (a :class:`~repro.core.feature_cache.PairUniverse`
    of this dataset), pair sets are memoised filters of the one-time
    enumeration instead of fresh quadratic walks.

    ``defer_key`` (the parent's shared-store key, set only by pool
    workers whose store the parent also holds) switches supervised
    store-backed repetitions to two-stage execution: fit here, return a
    :class:`_PendingScore`, and let the parent run the score phase
    uncontended.  Everything else scores inline as before.
    """

    shared = universe is not None and (
        universe.dataset_fingerprint == dataset.fingerprint()
    )

    def pairs_for(within: bool):
        if shared:
            return universe.subset(list(split.train_sources), within=within)
        return build_pairs(dataset, list(split.train_sources), within=within)

    timings = PhaseTimings()
    last_error: Exception | None = None
    attempts_made = 0
    for attempt in range(1, retry_policy.max_attempts + 1):
        attempts_made = attempt
        if attempt > 1:
            delay = retry_policy.delay(
                attempt - 1, seed=settings.seed, repetition=repetition
            )
            if delay > 0:
                sleep(delay)
        try:
            notify = getattr(matcher, "notify_repetition", None)
            if notify is not None:
                notify(repetition, attempt)
            started = perf_counter()
            test = pairs_for(within=False)
            timings.pair_build += perf_counter() - started
            if matcher.is_supervised:
                # Attempt 1 reproduces the historical stream exactly;
                # retries get a deterministic fresh draw.
                sample_seed = (settings.seed, repetition, 1709 + (attempt - 1))
                started = perf_counter()
                candidates = pairs_for(within=True)
                if shared:
                    # Same draw, memoised: every config of this grid
                    # cell reuses one PairSet object, so the store's
                    # row/gather caches hit across configs.
                    training = universe.training_sample(
                        candidates, settings.negative_ratio, sample_seed
                    )
                else:
                    training = sample_training_pairs(
                        candidates,
                        settings.negative_ratio,
                        np.random.default_rng(list(sample_seed)),
                    )
                timings.pair_build += perf_counter() - started
                if not training.positives() or not training.negatives():
                    return _Outcome(
                        status=STATUS_SKIPPED,
                        skip_reason=_SKIP_NO_POSITIVES,
                        attempts=attempt,
                        timings=timings,
                    )
                features_before = _matcher_feature_seconds(matcher)
                started = perf_counter()
                matcher.fit(dataset, training)
                elapsed = perf_counter() - started
                feature_share = (
                    _matcher_feature_seconds(matcher) - features_before
                )
                timings.feature_assembly += feature_share
                timings.train += max(0.0, elapsed - feature_share)
                if defer_key is not None and shared:
                    pending = _pending_score(matcher, defer_key, attempt, timings)
                    if pending is not None:
                        return pending
            features_before = _matcher_feature_seconds(matcher)
            started = perf_counter()
            scores = matcher.score_pairs(dataset, test.pairs)
            elapsed = perf_counter() - started
            feature_share = _matcher_feature_seconds(matcher) - features_before
            timings.feature_assembly += feature_share
            timings.score += max(0.0, elapsed - feature_share)
            assert_finite(scores, "similarity scores")
            quality = evaluate_scores(scores, test.labels(), matcher.threshold)
            if shared and universe.is_blocked:
                quality = blocked_test_quality(
                    quality, universe, list(split.train_sources)
                )
            return _Outcome(
                status=STATUS_OK,
                quality=quality,
                degradation=getattr(matcher, "last_degradation", None),
                attempts=attempt,
                timings=timings,
            )
        except Exception as error:  # noqa: BLE001 -- isolation boundary
            last_error = error
    return _Outcome(
        status=STATUS_FAILED,
        error_type=type(last_error).__name__,
        error_message=str(last_error),
        attempts=attempts_made,
        timings=timings,
    )


def _apply_outcome(
    result: ExperimentResult, repetition: int, outcome: _Outcome
) -> None:
    """Fold one executed repetition's outcome into the cell result."""
    if outcome.status == STATUS_OK:
        result.qualities.append(outcome.quality)
        if outcome.degradation is not None:
            result.degraded_repetitions += 1
    else:
        result.skipped_repetitions += 1
    if outcome.status == STATUS_FAILED:
        result.failures.append(
            RepetitionFailure(
                repetition=repetition,
                error_type=outcome.error_type or "Exception",
                message=outcome.error_message or "",
                attempts=outcome.attempts,
            )
        )
    if outcome.timings is not None:
        result.timings.merge(outcome.timings)


def _journal_outcome(
    journal: RunJournal, key: str, repetition: int, outcome: _Outcome
) -> None:
    """Durably append one executed outcome (shared by serial + parallel)."""
    if outcome.status == STATUS_OK:
        journal.record_quality(
            key,
            repetition,
            outcome.quality,
            degradation=outcome.degradation,
            attempts=outcome.attempts,
        )
    elif outcome.status == STATUS_SKIPPED:
        journal.record_skip(key, repetition, outcome.skip_reason or "")
    else:
        journal.append(
            JournalEntry(
                key=key,
                repetition=repetition,
                status=STATUS_FAILED,
                attempts=outcome.attempts,
                error_type=outcome.error_type,
                error=outcome.error_message,
            )
        )


def _apply_journal_entry(result: ExperimentResult, entry: JournalEntry) -> None:
    """Restore one journaled ``ok``/``skipped`` outcome into the result.

    ``failed`` entries are never restored -- the resume loop re-runs
    them, because a rerun is the natural recovery move after transient
    failures (possibly with a more generous retry policy), and
    last-record-wins means the fresh outcome supersedes the old one.
    """
    result.resumed_repetitions += 1
    if entry.status == STATUS_OK and entry.quality is not None:
        result.qualities.append(entry.quality)
        if entry.degradation is not None:
            result.degraded_repetitions += 1
    else:
        result.skipped_repetitions += 1


def evaluate_matcher(
    matcher: Matcher,
    dataset: Dataset,
    settings: RunSettings | None = None,
    *,
    journal: RunJournal | None = None,
    resume: bool = True,
    retry_policy: RetryPolicy | None = None,
    sleep=time.sleep,
    label: str | None = None,
    universe=None,
    prepare=None,
) -> ExperimentResult:
    """Run the paper's repeated-split protocol for one matcher.

    Supervised matchers are re-fitted per repetition on 2:1
    negative-sampled training pairs from the training sources;
    unsupervised matchers are scored directly.  The test side is *all*
    pairs involving at least one held-out source (no sampling).

    Repetitions whose random training split contains no positive pair
    (possible on tiny datasets) are skipped and counted in
    ``skipped_repetitions``; repetitions that raise are retried under
    ``retry_policy`` and recorded in ``failures`` (never aborting their
    siblings).  With ``journal`` set, every outcome is durably appended
    as it completes, and ``resume=True`` (the default) restores already
    journaled ``ok``/``skipped`` repetitions instead of re-running them;
    journaled *failures* are re-attempted (so rerunning with a higher
    ``max_retries`` actually retries them) and the fresh outcome
    supersedes the old record.

    ``label`` names the run cell (result and journal key) without
    mutating ``matcher.name``.  ``universe`` shares a precomputed
    :class:`~repro.core.feature_cache.PairUniverse` across cells.
    Preparation is lazy: ``matcher.prepare(dataset)`` -- or the
    ``prepare`` callable when given -- runs before the first repetition
    that actually executes, so a fully journaled rerun builds nothing.
    """
    settings = settings if settings is not None else RunSettings()
    retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
    cell_name = label if label is not None else matcher.name
    result = ExperimentResult(
        matcher_name=cell_name,
        dataset_name=dataset.name,
        settings=settings,
    )
    key = run_key(cell_name, dataset, settings) if journal is not None else None
    done = journal.entries(key) if (journal is not None and resume) else {}
    splits = repeated_source_splits(
        dataset, settings.train_fraction, settings.repetitions, settings.seed
    )
    prepared = False
    for repetition, split in enumerate(splits):
        entry = done.get(repetition)
        if entry is not None and entry.status != STATUS_FAILED:
            _apply_journal_entry(result, entry)
            continue
        if not prepared:
            if prepare is not None:
                prepare()
            else:
                matcher.prepare(dataset)
            prepared = True
        outcome = _run_repetition(
            matcher,
            dataset,
            settings,
            repetition,
            split,
            retry_policy,
            sleep,
            universe=universe,
        )
        _apply_outcome(result, repetition, outcome)
        if journal is not None:
            _journal_outcome(journal, key, repetition, outcome)
    if (
        universe is not None
        and universe.is_blocked
        and universe.dataset_fingerprint == dataset.fingerprint()
    ):
        stats = universe.blocking_stats()
        result.pair_recall = stats["pair_recall"]
        result.reduction_ratio = stats["reduction_ratio"]
    return result


class ExperimentRunner:
    """Sweep matchers across datasets and training fractions.

    The runner holds matcher *factories* rather than instances so every
    cell starts from a pristine matcher (classifier state must not leak
    between cells).  With ``share_features=True`` the expensive
    per-dataset artefacts -- the pair universe and, for matchers that
    support it, the full-width pair-feature store -- are built once per
    (dataset, embeddings) and shared across all cells of that dataset.
    """

    def __init__(self, matcher_factories: dict[str, "callable"]) -> None:
        if not matcher_factories:
            raise ConfigurationError("need at least one matcher factory")
        self._factories = dict(matcher_factories)

    def run(
        self,
        datasets: list[Dataset],
        train_fractions: tuple[float, ...] | list[float] = (0.2, 0.8),
        repetitions: int = 5,
        seed: int = 0,
        negative_ratio: float = 2.0,
        journal: RunJournal | None = None,
        resume: bool = True,
        retry_policy: RetryPolicy | None = None,
        workers: int = 1,
        share_features: bool = True,
        supervisor=None,
        policy=None,
    ) -> list[ExperimentResult]:
        """Run the full grid; returns one result per cell.

        A cell that fails entirely cannot happen: failures are isolated
        per repetition inside :func:`evaluate_matcher`.  With a journal,
        a killed grid rerun with ``resume=True`` recomputes only the
        missing repetitions of the missing cells.

        ``workers > 1`` fans (cell, repetition) items out to a
        supervised process pool; results and journals are byte-identical
        to ``workers=1`` because the parent applies outcomes in serial
        order and every repetition's randomness derives from ``(seed,
        repetition)`` alone.  ``supervisor`` (a
        :class:`~repro.evaluation.supervisor.SupervisorPolicy`) tunes
        the pool's failure model: per-item deadlines, respawn budget,
        poison quarantine.

        ``policy`` (a :class:`~repro.blocking.CandidatePolicy`) prunes
        every dataset's pair universe before any cell runs: training
        and test pairs come from the candidates only, pruned true
        matches count as false negatives, and each result carries
        ``pair_recall``/``reduction_ratio``.  Requires
        ``share_features`` (the universe *is* the shared artefact).
        """
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        blocked = policy is not None and not policy.is_null
        if blocked and not share_features:
            raise ConfigurationError(
                "a blocking policy needs share_features=True: the pruned "
                "pair universe is the shared artefact"
            )
        if workers > 1:
            from repro.evaluation.parallel import run_grid_parallel

            return run_grid_parallel(
                self._factories,
                datasets,
                train_fractions=tuple(train_fractions),
                repetitions=repetitions,
                seed=seed,
                negative_ratio=negative_ratio,
                journal=journal,
                resume=resume,
                retry_policy=retry_policy,
                workers=workers,
                share_features=share_features,
                supervisor=supervisor,
                candidate_policy=policy,
            )
        results: list[ExperimentResult] = []
        for dataset in datasets:
            universe = None
            stores: dict[int, object] = {}
            if share_features:
                from repro.core.feature_cache import PairUniverse

                embeddings = (
                    probe_policy_embeddings(self._factories) if blocked else None
                )
                universe = PairUniverse(dataset, policy, embeddings=embeddings)
            for fraction in train_fractions:
                settings = RunSettings(
                    train_fraction=fraction,
                    repetitions=repetitions,
                    negative_ratio=negative_ratio,
                    seed=seed,
                )
                for label, factory in self._factories.items():
                    matcher = factory()
                    prepare = None
                    if share_features:
                        prepare = _shared_prepare(
                            matcher, dataset, universe, stores
                        )
                    result = evaluate_matcher(
                        matcher,
                        dataset,
                        settings,
                        journal=journal,
                        resume=resume,
                        retry_policy=retry_policy,
                        label=label,
                        universe=universe,
                        prepare=prepare,
                    )
                    results.append(result)
        return results


def probe_policy_embeddings(factories: dict):
    """Embeddings for resolving an embedding-bucket policy, from a factory.

    The pair universe is built before any cell's matcher exists, so an
    embedding-LSH policy borrows the first factory matcher's embedding
    space (every LEAPME factory of one grid shares it).  Returns ``None``
    when no factory exposes embeddings -- resolution then fails with the
    policy's own configuration error.
    """
    for factory in factories.values():
        embeddings = getattr(factory(), "embeddings", None)
        if embeddings is not None:
            return embeddings
    return None


def _shared_prepare(matcher, dataset, universe, stores: dict):
    """Lazy preparation that shares feature stores across grid cells.

    Returns a callable invoked before a cell's first executed
    repetition.  Matchers exposing ``build_feature_store``/
    ``attach_store`` share one :class:`PairFeatureStore` per
    (dataset, embeddings object); everything else falls back to plain
    ``matcher.prepare(dataset)``.  Nothing is built for fully resumed
    cells because the callable is never invoked.
    """

    def _prepare() -> None:
        attach = getattr(matcher, "attach_store", None)
        build = getattr(matcher, "build_feature_store", None)
        embeddings = getattr(matcher, "embeddings", None)
        if attach is None or build is None or embeddings is None:
            matcher.prepare(dataset)
            return
        store_key = id(embeddings)
        store = stores.get(store_key)
        if store is None:
            store = stores[store_key] = build(dataset, universe)
        attach(store)

    return _prepare
