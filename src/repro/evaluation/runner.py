"""The experiment runner: repeated source splits, training, scoring.

Implements the protocol of Section V-B:

* "We take a fraction of the sources of a dataset (at random) for
  training.  We use the examples that involve two sources of data in the
  training set to train the classifier, and test it with the rest."
* "the training data consists of two negative pairs ... for every
  positive pair"
* "for each dataset, we ran LEAPME 25 times, using different random
  combinations of training sources" (repetitions are configurable; the
  benchmark defaults use fewer for wall-clock reasons and the paper
  value via the ``paper`` scale).

Fault tolerance
---------------
Long grids must survive bad repetitions and process kills:

* every repetition runs inside failure isolation -- an exception is
  retried under a :class:`RetryPolicy` (deterministic reseeding,
  exponential backoff hook) and, if retries are exhausted, recorded as a
  structured :class:`RepetitionFailure` instead of aborting siblings;
* with a :class:`~repro.evaluation.checkpoint.RunJournal`, each
  repetition's outcome is durably appended as it completes, and a rerun
  resumes from the journal, re-executing only what is missing or
  previously failed (journaled failures get a fresh attempt).  Because
  each repetition derives its randomness from ``(seed, repetition)``
  alone, a resumed grid is bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.api import Matcher
from repro.data.model import Dataset
from repro.data.pairs import build_pairs, sample_training_pairs
from repro.data.splits import repeated_source_splits
from repro.errors import ConfigurationError
from repro.evaluation.checkpoint import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    JournalEntry,
    RunJournal,
    run_key,
)
from repro.evaluation.metrics import MatchQuality, evaluate_scores, mean_quality
from repro.nn.guards import assert_finite

_SKIP_NO_POSITIVES = "no positive/negative training pairs in split"


@dataclass(frozen=True)
class RunSettings:
    """Protocol parameters for one experiment."""

    train_fraction: float = 0.2
    repetitions: int = 5
    negative_ratio: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.train_fraction < 1.0:
            raise ConfigurationError("train_fraction must be in (0, 1)")
        if self.repetitions < 1:
            raise ConfigurationError("repetitions must be >= 1")
        if self.negative_ratio < 0:
            raise ConfigurationError("negative_ratio must be >= 0")


@dataclass(frozen=True)
class RetryPolicy:
    """How a failing repetition is retried before being recorded as failed.

    Each retry reseeds the training-pair sampler deterministically from
    ``(seed, repetition, attempt)``, so a transient numeric failure on
    one draw gets a genuinely different (but reproducible) draw, and two
    machines running the same grid behave identically.  ``backoff_base``
    seconds (doubling per attempt) are slept between attempts when
    positive -- the hook for rate-limited or I/O-bound matchers; the
    default of zero keeps tests and CPU-bound grids fast.
    """

    max_retries: int = 1
    backoff_base: float = 0.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.backoff_base < 0:
            raise ConfigurationError("backoff_base must be >= 0")

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def delay(self, attempt: int) -> float:
        """Seconds to wait before ``attempt`` (exponential, attempt >= 1)."""
        if self.backoff_base <= 0:
            return 0.0
        return self.backoff_base * (2.0 ** (attempt - 1))


@dataclass(frozen=True)
class RepetitionFailure:
    """A repetition that exhausted its retries (structured, not a string)."""

    repetition: int
    error_type: str
    message: str
    attempts: int

    def describe(self) -> str:
        return (
            f"repetition {self.repetition}: {self.error_type}: {self.message} "
            f"(after {self.attempts} attempt(s))"
        )


@dataclass
class ExperimentResult:
    """Per-repetition qualities for one (matcher, dataset, settings) cell."""

    matcher_name: str
    dataset_name: str
    settings: RunSettings
    qualities: list[MatchQuality] = field(default_factory=list)
    #: Repetitions that produced no quality: unusable training splits
    #: plus repetitions whose failures exhausted the retry policy.
    skipped_repetitions: int = 0
    #: Structured records for the failed subset of ``skipped_repetitions``.
    failures: list[RepetitionFailure] = field(default_factory=list)
    #: Repetitions that completed only via degraded training
    #: (reduced learning rate or classical-classifier fallback).
    degraded_repetitions: int = 0
    #: Repetitions restored from a journal instead of being re-run.
    resumed_repetitions: int = 0

    @property
    def precision(self) -> float:
        return mean_quality(self.qualities)[0]

    @property
    def recall(self) -> float:
        return mean_quality(self.qualities)[1]

    @property
    def f1(self) -> float:
        return mean_quality(self.qualities)[2]

    @property
    def f1_std(self) -> float:
        """Standard deviation of F1 across repetitions."""
        if not self.qualities:
            return 0.0
        return float(np.std([quality.f1 for quality in self.qualities]))

    def as_row(self) -> dict:
        """Flat dict for table rendering."""
        return {
            "system": self.matcher_name,
            "dataset": self.dataset_name,
            "train_fraction": self.settings.train_fraction,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }

    def describe(self) -> str:
        """One-line summary."""
        text = (
            f"{self.matcher_name} on {self.dataset_name} "
            f"@{self.settings.train_fraction:.0%}: "
            f"P={self.precision:.2f} R={self.recall:.2f} F1={self.f1:.2f} "
            f"({len(self.qualities)} reps)"
        )
        health = []
        if self.skipped_repetitions:
            health.append(f"{self.skipped_repetitions} skipped")
        if self.degraded_repetitions:
            health.append(f"{self.degraded_repetitions} degraded")
        if self.resumed_repetitions:
            health.append(f"{self.resumed_repetitions} resumed")
        if health:
            text += f" [{', '.join(health)}]"
        return text


@dataclass(frozen=True)
class _Outcome:
    """Internal: what one repetition produced after isolation/retries."""

    status: str
    quality: MatchQuality | None = None
    degradation: str | None = None
    attempts: int = 1
    error: BaseException | None = None
    skip_reason: str | None = None


def _run_repetition(
    matcher: Matcher,
    dataset: Dataset,
    settings: RunSettings,
    repetition: int,
    split,
    retry_policy: RetryPolicy,
    sleep,
) -> _Outcome:
    """One repetition under failure isolation and the retry policy.

    Only :class:`Exception` is caught: ``KeyboardInterrupt`` and other
    ``BaseException`` kills (including the fault harness's simulated
    ones) propagate, exactly like a real ``SIGKILL`` would end the
    process -- the journal then carries the completed prefix.
    """
    last_error: Exception | None = None
    for attempt in range(1, retry_policy.max_attempts + 1):
        if attempt > 1:
            delay = retry_policy.delay(attempt - 1)
            if delay > 0:
                sleep(delay)
        try:
            notify = getattr(matcher, "notify_repetition", None)
            if notify is not None:
                notify(repetition, attempt)
            test = build_pairs(dataset, list(split.train_sources), within=False)
            if matcher.is_supervised:
                # Attempt 1 reproduces the historical stream exactly;
                # retries get a deterministic fresh draw.
                rng = np.random.default_rng(
                    [settings.seed, repetition, 1709 + (attempt - 1)]
                )
                candidates = build_pairs(
                    dataset, list(split.train_sources), within=True
                )
                training = sample_training_pairs(
                    candidates, settings.negative_ratio, rng
                )
                if not training.positives() or not training.negatives():
                    return _Outcome(
                        status=STATUS_SKIPPED,
                        skip_reason=_SKIP_NO_POSITIVES,
                        attempts=attempt,
                    )
                matcher.fit(dataset, training)
            scores = matcher.score_pairs(dataset, test.pairs)
            assert_finite(scores, "similarity scores")
            quality = evaluate_scores(scores, test.labels(), matcher.threshold)
            return _Outcome(
                status=STATUS_OK,
                quality=quality,
                degradation=getattr(matcher, "last_degradation", None),
                attempts=attempt,
            )
        except Exception as error:  # noqa: BLE001 -- isolation boundary
            last_error = error
    return _Outcome(
        status=STATUS_FAILED, error=last_error, attempts=retry_policy.max_attempts
    )


def _apply_outcome(result: ExperimentResult, outcome: _Outcome) -> None:
    if outcome.status == STATUS_OK:
        result.qualities.append(outcome.quality)
        if outcome.degradation is not None:
            result.degraded_repetitions += 1
    else:
        result.skipped_repetitions += 1


def _apply_journal_entry(result: ExperimentResult, entry: JournalEntry) -> None:
    """Restore one journaled ``ok``/``skipped`` outcome into the result.

    ``failed`` entries are never restored -- the resume loop re-runs
    them, because a rerun is the natural recovery move after transient
    failures (possibly with a more generous retry policy), and
    last-record-wins means the fresh outcome supersedes the old one.
    """
    result.resumed_repetitions += 1
    if entry.status == STATUS_OK and entry.quality is not None:
        result.qualities.append(entry.quality)
        if entry.degradation is not None:
            result.degraded_repetitions += 1
    else:
        result.skipped_repetitions += 1


def evaluate_matcher(
    matcher: Matcher,
    dataset: Dataset,
    settings: RunSettings | None = None,
    *,
    journal: RunJournal | None = None,
    resume: bool = True,
    retry_policy: RetryPolicy | None = None,
    sleep=time.sleep,
) -> ExperimentResult:
    """Run the paper's repeated-split protocol for one matcher.

    Supervised matchers are re-fitted per repetition on 2:1
    negative-sampled training pairs from the training sources;
    unsupervised matchers are scored directly.  The test side is *all*
    pairs involving at least one held-out source (no sampling).

    Repetitions whose random training split contains no positive pair
    (possible on tiny datasets) are skipped and counted in
    ``skipped_repetitions``; repetitions that raise are retried under
    ``retry_policy`` and recorded in ``failures`` (never aborting their
    siblings).  With ``journal`` set, every outcome is durably appended
    as it completes, and ``resume=True`` (the default) restores already
    journaled ``ok``/``skipped`` repetitions instead of re-running them;
    journaled *failures* are re-attempted (so rerunning with a higher
    ``max_retries`` actually retries them) and the fresh outcome
    supersedes the old record.
    """
    settings = settings if settings is not None else RunSettings()
    retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
    result = ExperimentResult(
        matcher_name=matcher.name,
        dataset_name=dataset.name,
        settings=settings,
    )
    key = run_key(matcher.name, dataset, settings) if journal is not None else None
    done = journal.entries(key) if (journal is not None and resume) else {}
    matcher.prepare(dataset)
    splits = repeated_source_splits(
        dataset, settings.train_fraction, settings.repetitions, settings.seed
    )
    for repetition, split in enumerate(splits):
        entry = done.get(repetition)
        if entry is not None and entry.status != STATUS_FAILED:
            _apply_journal_entry(result, entry)
            continue
        outcome = _run_repetition(
            matcher, dataset, settings, repetition, split, retry_policy, sleep
        )
        _apply_outcome(result, outcome)
        if outcome.status == STATUS_FAILED:
            result.failures.append(
                RepetitionFailure(
                    repetition=repetition,
                    error_type=type(outcome.error).__name__,
                    message=str(outcome.error),
                    attempts=outcome.attempts,
                )
            )
        if journal is not None:
            if outcome.status == STATUS_OK:
                journal.record_quality(
                    key,
                    repetition,
                    outcome.quality,
                    degradation=outcome.degradation,
                    attempts=outcome.attempts,
                )
            elif outcome.status == STATUS_SKIPPED:
                journal.record_skip(key, repetition, outcome.skip_reason or "")
            else:
                journal.record_failure(
                    key, repetition, outcome.error, outcome.attempts
                )
    return result


class ExperimentRunner:
    """Sweep matchers across datasets and training fractions.

    The runner holds matcher *factories* rather than instances so every
    cell starts from a pristine matcher (feature tables are rebuilt per
    dataset anyway; classifier state must not leak between cells).
    """

    def __init__(self, matcher_factories: dict[str, "callable"]) -> None:
        if not matcher_factories:
            raise ConfigurationError("need at least one matcher factory")
        self._factories = dict(matcher_factories)

    def run(
        self,
        datasets: list[Dataset],
        train_fractions: list[float] = (0.2, 0.8),
        repetitions: int = 5,
        seed: int = 0,
        negative_ratio: float = 2.0,
        journal: RunJournal | None = None,
        resume: bool = True,
        retry_policy: RetryPolicy | None = None,
    ) -> list[ExperimentResult]:
        """Run the full grid; returns one result per cell.

        A cell that fails entirely cannot happen: failures are isolated
        per repetition inside :func:`evaluate_matcher`.  With a journal,
        a killed grid rerun with ``resume=True`` recomputes only the
        missing repetitions of the missing cells.
        """
        results: list[ExperimentResult] = []
        for dataset in datasets:
            for fraction in train_fractions:
                settings = RunSettings(
                    train_fraction=fraction,
                    repetitions=repetitions,
                    negative_ratio=negative_ratio,
                    seed=seed,
                )
                for label, factory in self._factories.items():
                    matcher = factory()
                    # The factory label is the cell identity (journal key
                    # included); two configs sharing a display name must
                    # not share journal entries.
                    matcher.name = label
                    result = evaluate_matcher(
                        matcher,
                        dataset,
                        settings,
                        journal=journal,
                        resume=resume,
                        retry_policy=retry_policy,
                    )
                    result.matcher_name = label
                    results.append(result)
        return results
