"""The experiment runner: repeated source splits, training, scoring.

Implements the protocol of Section V-B:

* "We take a fraction of the sources of a dataset (at random) for
  training.  We use the examples that involve two sources of data in the
  training set to train the classifier, and test it with the rest."
* "the training data consists of two negative pairs ... for every
  positive pair"
* "for each dataset, we ran LEAPME 25 times, using different random
  combinations of training sources" (repetitions are configurable; the
  benchmark defaults use fewer for wall-clock reasons and the paper
  value via the ``paper`` scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.api import Matcher
from repro.data.model import Dataset
from repro.data.pairs import build_pairs, sample_training_pairs
from repro.data.splits import repeated_source_splits
from repro.errors import ConfigurationError
from repro.evaluation.metrics import MatchQuality, evaluate_scores, mean_quality


@dataclass(frozen=True)
class RunSettings:
    """Protocol parameters for one experiment."""

    train_fraction: float = 0.2
    repetitions: int = 5
    negative_ratio: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.train_fraction < 1.0:
            raise ConfigurationError("train_fraction must be in (0, 1)")
        if self.repetitions < 1:
            raise ConfigurationError("repetitions must be >= 1")
        if self.negative_ratio < 0:
            raise ConfigurationError("negative_ratio must be >= 0")


@dataclass
class ExperimentResult:
    """Per-repetition qualities for one (matcher, dataset, settings) cell."""

    matcher_name: str
    dataset_name: str
    settings: RunSettings
    qualities: list[MatchQuality] = field(default_factory=list)
    skipped_repetitions: int = 0

    @property
    def precision(self) -> float:
        return mean_quality(self.qualities)[0]

    @property
    def recall(self) -> float:
        return mean_quality(self.qualities)[1]

    @property
    def f1(self) -> float:
        return mean_quality(self.qualities)[2]

    @property
    def f1_std(self) -> float:
        """Standard deviation of F1 across repetitions."""
        if not self.qualities:
            return 0.0
        return float(np.std([quality.f1 for quality in self.qualities]))

    def as_row(self) -> dict:
        """Flat dict for table rendering."""
        return {
            "system": self.matcher_name,
            "dataset": self.dataset_name,
            "train_fraction": self.settings.train_fraction,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"{self.matcher_name} on {self.dataset_name} "
            f"@{self.settings.train_fraction:.0%}: "
            f"P={self.precision:.2f} R={self.recall:.2f} F1={self.f1:.2f} "
            f"({len(self.qualities)} reps)"
        )


def evaluate_matcher(
    matcher: Matcher,
    dataset: Dataset,
    settings: RunSettings | None = None,
) -> ExperimentResult:
    """Run the paper's repeated-split protocol for one matcher.

    Supervised matchers are re-fitted per repetition on 2:1
    negative-sampled training pairs from the training sources;
    unsupervised matchers are scored directly.  The test side is *all*
    pairs involving at least one held-out source (no sampling).

    Repetitions whose random training split contains no positive pair
    (possible on tiny datasets) are skipped and counted in
    ``skipped_repetitions``.
    """
    settings = settings if settings is not None else RunSettings()
    result = ExperimentResult(
        matcher_name=matcher.name,
        dataset_name=dataset.name,
        settings=settings,
    )
    matcher.prepare(dataset)
    splits = repeated_source_splits(
        dataset, settings.train_fraction, settings.repetitions, settings.seed
    )
    for repetition, split in enumerate(splits):
        test = build_pairs(dataset, list(split.train_sources), within=False)
        if matcher.is_supervised:
            rng = np.random.default_rng([settings.seed, repetition, 1709])
            candidates = build_pairs(dataset, list(split.train_sources), within=True)
            training = sample_training_pairs(
                candidates, settings.negative_ratio, rng
            )
            if not training.positives() or not training.negatives():
                result.skipped_repetitions += 1
                continue
            matcher.fit(dataset, training)
        scores = matcher.score_pairs(dataset, test.pairs)
        result.qualities.append(
            evaluate_scores(scores, test.labels(), matcher.threshold)
        )
    return result


class ExperimentRunner:
    """Sweep matchers across datasets and training fractions.

    The runner holds matcher *factories* rather than instances so every
    cell starts from a pristine matcher (feature tables are rebuilt per
    dataset anyway; classifier state must not leak between cells).
    """

    def __init__(self, matcher_factories: dict[str, "callable"]) -> None:
        if not matcher_factories:
            raise ConfigurationError("need at least one matcher factory")
        self._factories = dict(matcher_factories)

    def run(
        self,
        datasets: list[Dataset],
        train_fractions: list[float] = (0.2, 0.8),
        repetitions: int = 5,
        seed: int = 0,
        negative_ratio: float = 2.0,
    ) -> list[ExperimentResult]:
        """Run the full grid; returns one result per cell."""
        results: list[ExperimentResult] = []
        for dataset in datasets:
            for fraction in train_fractions:
                settings = RunSettings(
                    train_fraction=fraction,
                    repetitions=repetitions,
                    negative_ratio=negative_ratio,
                    seed=seed,
                )
                for label, factory in self._factories.items():
                    matcher = factory()
                    result = evaluate_matcher(matcher, dataset, settings)
                    result.matcher_name = label
                    results.append(result)
        return results
