"""Evaluation harness: metrics, experiment runner, reporting.

Implements the protocol of Section V: per-pair precision/recall/F1,
repeated random source splits, the 3 x 3 feature-configuration grid, the
baseline comparison and the transfer-learning extension.
"""

from repro.evaluation.active import ActiveLearningCurve, run_active_learning
from repro.evaluation.checkpoint import (
    QUARANTINE_REASONS,
    REASON_TIMEOUT,
    REASON_WORKER_CRASH,
    JournalEntry,
    RunJournal,
    run_key,
)
from repro.evaluation.curves import (
    PrecisionRecallCurve,
    precision_recall_curve,
    render_pr_curve,
)
from repro.evaluation.markdown import results_to_markdown, summary_to_markdown
from repro.evaluation.metrics import MatchQuality, evaluate_predictions, evaluate_scores
from repro.evaluation.reporting import (
    format_table2,
    render_results_table,
    render_robustness_report,
)
from repro.evaluation.runner import (
    ExperimentResult,
    ExperimentRunner,
    PhaseTimings,
    RepetitionFailure,
    RetryPolicy,
    RunSettings,
    evaluate_matcher,
)
from repro.evaluation.supervisor import (
    PoolSupervisor,
    QuarantineRecord,
    SupervisorPolicy,
)
from repro.evaluation.significance import (
    ComparisonResult,
    bootstrap_confidence_interval,
    compare_results,
    paired_permutation_test,
)
from repro.evaluation.transfer import TransferResult, run_transfer_experiment

__all__ = [
    "ActiveLearningCurve",
    "run_active_learning",
    "PrecisionRecallCurve",
    "precision_recall_curve",
    "render_pr_curve",
    "MatchQuality",
    "evaluate_predictions",
    "evaluate_scores",
    "ExperimentRunner",
    "ExperimentResult",
    "PhaseTimings",
    "RunSettings",
    "RetryPolicy",
    "RepetitionFailure",
    "RunJournal",
    "JournalEntry",
    "run_key",
    "QUARANTINE_REASONS",
    "REASON_TIMEOUT",
    "REASON_WORKER_CRASH",
    "PoolSupervisor",
    "QuarantineRecord",
    "SupervisorPolicy",
    "evaluate_matcher",
    "render_results_table",
    "render_robustness_report",
    "results_to_markdown",
    "summary_to_markdown",
    "format_table2",
    "ComparisonResult",
    "paired_permutation_test",
    "bootstrap_confidence_interval",
    "compare_results",
    "TransferResult",
    "run_transfer_experiment",
]
