"""Supervised process-pool execution: crash containment for the grid.

``ProcessPoolExecutor`` has no failure model: one worker killed by the
OOM reaper surfaces as ``BrokenProcessPool`` and aborts every future, a
hung task blocks ``future.result()`` forever, and Ctrl-C discards
completed-but-unrecorded work.  :class:`PoolSupervisor` sits between the
grid runner and the executor and supplies the missing model:

* **Crash containment** -- worker death (``BrokenProcessPool`` or a
  dead-pid sweep) kills only the pool generation, not the run.  The
  supervisor respawns the pool under bounded exponential backoff and
  re-dispatches every unfinished in-flight item.
* **Attribution by solo probe** -- when the pool dies with several items
  in flight, the culprit is unknowable, so all of them become
  *suspects* and are re-dispatched one at a time.  A pool death during
  a solo probe is certain attribution: that item gets a fault strike.
  Innocent co-flight items therefore never accumulate strikes.
* **Deadlines** -- with a ``cell_timeout``, a watchdog tracks when each
  item started (workers report actual starts over a ``poll_started``
  channel; without one, the executor's RUNNING transition is the
  fallback) and, past the deadline, kills and reaps the workers and
  re-dispatches the victims.  The timed-out item itself is attributed
  a strike directly (its deadline, its fault).
* **Poison quarantine** -- an item whose strikes reach
  ``max_item_faults`` is not retried forever: it is completed with a
  caller-built quarantine outcome (the grid journals it as ``failed``
  with a ``worker_crash``/``timeout`` reason) and the rest of the grid
  proceeds.
* **Serial degradation** -- when pool deaths exhaust
  ``max_pool_respawns``, the supervisor logs a warning and runs the
  remaining items through the caller's serial fallback in the parent
  process, so a broken multiprocessing environment degrades to the
  serial path instead of failing the run.
* **Signal-safe shutdown** -- a ``stop`` event (set by the caller's
  SIGINT/SIGTERM handler) halts dispatch, harvests futures that are
  already complete within a short grace window, reaps the workers and
  raises :class:`~repro.errors.GridInterrupted`.  The caller drains the
  harvested outcomes into its journal, so ``--resume`` continues from
  the exact recorded prefix.

The supervisor is deliberately generic -- items are opaque hashables,
outcomes are opaque values -- so it is unit-testable with plain
functions and reusable by any fan-out stage.  An *exception raised by
the work function itself* (as opposed to a dead worker) is not a
supervision concern: the supervisor settles the remaining in-flight
futures, reports their outcomes, and re-raises -- exactly the journal
prefix a serial run dying at that item would have left.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, GridInterrupted
from repro.evaluation.checkpoint import REASON_TIMEOUT, REASON_WORKER_CRASH

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class SupervisorPolicy:
    """Failure-model knobs for :class:`PoolSupervisor`.

    Parameters
    ----------
    cell_timeout:
        Wall-clock seconds one item may run before the watchdog kills
        the pool and re-dispatches; ``None`` disables deadlines.  The
        clock starts when the worker *reports* starting the item (see
        ``PoolSupervisor(poll_started=...)``); without such a channel
        it falls back to the executor marking the future running, which
        can predate actual execution by the whole pool start-up
        (imports, initializer work) -- in that mode the timeout must
        comfortably exceed pool start-up or innocent items may be
        struck.
    max_pool_respawns:
        Pool deaths tolerated before degrading to serial execution.
    max_item_faults:
        Attributed strikes (solo crashes or timeouts) before an item is
        quarantined instead of re-dispatched.
    backoff_base / backoff_cap:
        Exponential respawn backoff: death *n* sleeps
        ``min(cap, base * 2**(n-1))`` seconds before the new pool.
    watchdog_interval:
        Tick of the completion/deadline/dead-pid watch loop.
    shutdown_grace:
        Seconds to wait for nearly-done futures when a stop is
        requested, before reaping the workers.
    """

    cell_timeout: float | None = None
    max_pool_respawns: int = 5
    max_item_faults: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    watchdog_interval: float = 0.05
    shutdown_grace: float = 0.25

    def __post_init__(self) -> None:
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ConfigurationError("cell_timeout must be positive (or None)")
        if self.max_pool_respawns < 0:
            raise ConfigurationError("max_pool_respawns must be >= 0")
        if self.max_item_faults < 1:
            raise ConfigurationError("max_item_faults must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigurationError("backoff values must be >= 0")
        if self.watchdog_interval <= 0:
            raise ConfigurationError("watchdog_interval must be positive")
        if self.shutdown_grace < 0:
            raise ConfigurationError("shutdown_grace must be >= 0")

    def respawn_delay(self, death: int) -> float:
        """Backoff before respawn number ``death`` (1-based)."""
        if self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * (2.0 ** (death - 1)))


@dataclass(frozen=True)
class QuarantineRecord:
    """One item the supervisor gave up on, and why."""

    item: object
    reason: str
    faults: int


@dataclass(frozen=True)
class _Death:
    """A pool-generation death: ``cause`` is the timed-out item, if any."""

    cause: object = None
    reason: str = REASON_WORKER_CRASH


class PoolSupervisor:
    """Run ``items`` through a process pool under the failure model.

    Parameters
    ----------
    items:
        Work items in serial order (opaque, hashable, unique).
    make_pool:
        Zero-argument factory for a fresh ``ProcessPoolExecutor``.
    submit:
        ``submit(pool, item) -> Future`` dispatching one item.
    on_complete:
        ``on_complete(item, outcome)`` called exactly once per item, in
        completion order (the caller reorders; see the grid's drain).
    quarantine_outcome:
        ``quarantine_outcome(item, reason, faults) -> outcome`` building
        the structured failure outcome for a quarantined item.
    run_serial:
        ``run_serial(item) -> outcome`` executing one item in the parent
        process -- the degraded path once respawns are exhausted.
    window:
        Maximum items in flight (usually the worker count).
    stop:
        Optional ``threading.Event``; once set, the supervisor shuts
        down cleanly and raises :class:`GridInterrupted`.
    poll_started:
        Optional zero-argument callable returning the items whose
        execution a worker has *actually begun* since the last call
        (e.g. drained from a queue the workers report to).  When
        provided, the ``cell_timeout`` clock starts at the reported
        start instead of the executor's RUNNING transition, so pool
        start-up time is never charged against an item's deadline.
        Reports for items no longer in flight are discarded, and the
        channel is drained on every pool death so a dead generation's
        reports cannot leak into the next one.
    """

    def __init__(
        self,
        items,
        *,
        make_pool,
        submit,
        on_complete,
        quarantine_outcome,
        run_serial,
        window: int,
        policy: SupervisorPolicy | None = None,
        stop=None,
        poll_started=None,
        sleep=time.sleep,
    ) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self._policy = policy if policy is not None else SupervisorPolicy()
        self._make_pool = make_pool
        self._submit = submit
        self._on_complete = on_complete
        self._quarantine_outcome = quarantine_outcome
        self._run_serial = run_serial
        self._window = window
        self._stop = stop
        self._poll_started = poll_started
        self._sleep = sleep
        self._order = {item: index for index, item in enumerate(items)}
        if len(self._order) != len(items):
            raise ConfigurationError("supervised items must be unique")
        self._pending: deque = deque(items)
        self._suspects: deque = deque()
        self._probe: object | None = None
        self._inflight: dict = {}
        self._started: dict = {}
        self._strikes: dict = {}
        self._deaths = 0
        # -- telemetry ---------------------------------------------------
        self.respawns = 0
        self.crashes = 0
        self.timeouts = 0
        self.quarantined: list[QuarantineRecord] = []
        self.degraded_to_serial = False

    # -- main loop -------------------------------------------------------
    def run(self) -> None:
        """Supervise until every item completed, quarantined, or raised."""
        if not self._pending:
            return
        pool = None
        try:
            while self._pending or self._suspects or self._inflight:
                if self._stop is not None and self._stop.is_set():
                    self._halt(pool)
                    pool = None
                    raise GridInterrupted(
                        "grid stopped by signal; completed outcomes drained "
                        "-- rerun with resume to continue"
                    )
                if self.degraded_to_serial:
                    self._drain_serially()
                    return
                if pool is None:
                    pool = self._make_pool()
                death = self._dispatch(pool) or self._watch(pool)
                if death is not None:
                    self._handle_death(pool, death)
                    pool = None
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    # -- dispatch --------------------------------------------------------
    def _dispatch(self, pool) -> _Death | None:
        """Fill the window.

        Submission is peek-then-pop: an item leaves its queue (and a
        probe is declared) only *after* ``submit`` returned a future.
        A pool that breaks at submit time therefore loses nothing --
        the item stays exactly where it was -- and a broken probe
        submission is never mis-attributed as a strike against an item
        that never ran.
        """
        if self._probe is not None:
            return None  # a probe owns the pool exclusively
        if self._suspects:
            if not self._inflight:
                item = self._suspects[0]
                try:
                    future = self._submit(pool, item)
                except BrokenProcessPool:
                    return _Death()
                self._suspects.popleft()
                self._probe = item
                self._inflight[future] = item
            return None
        while self._pending and len(self._inflight) < self._window:
            item = self._pending[0]
            try:
                future = self._submit(pool, item)
            except BrokenProcessPool:
                return _Death()
            self._pending.popleft()
            self._inflight[future] = item
        return None

    # -- watch -----------------------------------------------------------
    def _watch(self, pool) -> _Death | None:
        done, _ = wait(
            tuple(self._inflight),
            timeout=self._policy.watchdog_interval,
            return_when=FIRST_COMPLETED,
        )
        now = time.monotonic()
        if self._poll_started is None:
            # Fallback deadline clock: RUNNING means "queued to a
            # worker", which can predate actual execution by the whole
            # pool start-up.  See SupervisorPolicy.cell_timeout.
            for future, item in self._inflight.items():
                if item not in self._started and future.running():
                    self._started[item] = now
        for future in sorted(
            done, key=lambda f: self._order[self._inflight[f]]
        ):
            item = self._inflight.pop(future)
            self._started.pop(item, None)
            try:
                outcome = future.result()
            except BrokenProcessPool:
                self._inflight[future] = item  # still unfinished: re-dispatch
                return _Death()
            except BaseException as error:
                # The *work function* raised (not a dead worker): the
                # serial path would have died here.  Settle the rest of
                # the flight so the caller can journal the completed
                # prefix, then propagate.
                self._settle_and_raise(pool, error)
            if item == self._probe:
                self._probe = None
            self._on_complete(item, outcome)
        if self._poll_started is not None:
            inflight_items = set(self._inflight.values())
            for item in self._poll_started():
                # Stale reports -- items already completed, or struck
                # from a previous generation -- are discarded.
                if item in inflight_items:
                    self._started.setdefault(item, now)
        if self._policy.cell_timeout is not None:
            for item, since in self._started.items():
                if now - since >= self._policy.cell_timeout:
                    return _Death(cause=item, reason=REASON_TIMEOUT)
        if self._dead_worker(pool):
            return _Death()
        return None

    @staticmethod
    def _dead_worker(pool) -> bool:
        """Dead-pid sweep: a worker exited without the executor noticing."""
        processes = getattr(pool, "_processes", None)
        if not processes:
            return False
        return any(
            process.exitcode is not None for process in list(processes.values())
        )

    # -- death handling --------------------------------------------------
    def _handle_death(self, pool, death: _Death) -> None:
        self._deaths += 1
        survivors = sorted(self._inflight.values(), key=self._order.__getitem__)
        self._inflight.clear()
        self._started.clear()
        if self._poll_started is not None:
            for _ in self._poll_started():
                pass  # discard the dead generation's start reports
        probe = self._probe
        self._probe = None
        if death.reason == REASON_TIMEOUT:
            self.timeouts += 1
            logger.warning(
                "item %r exceeded cell timeout of %.3gs; killing pool",
                death.cause,
                self._policy.cell_timeout,
            )
            self._strike(death.cause, REASON_TIMEOUT)
            victims = [item for item in survivors if item != death.cause]
            self._pending.extendleft(reversed(victims))
        else:
            self.crashes += 1
            if probe is not None:
                # Solo probe: the dead pool ran exactly one item, so the
                # attribution is certain.
                logger.warning("worker died during solo probe of %r", probe)
                self._strike(probe, REASON_WORKER_CRASH)
            else:
                logger.warning(
                    "worker pool died with %d item(s) in flight; "
                    "re-dispatching them one at a time",
                    len(survivors),
                )
                self._suspects.extend(survivors)
        self._reap(pool)
        if self._deaths > self._policy.max_pool_respawns:
            logger.warning(
                "pool died %d time(s), exceeding the respawn budget of %d: "
                "degrading to serial in-process execution",
                self._deaths,
                self._policy.max_pool_respawns,
            )
            self.degraded_to_serial = True
            return
        self.respawns += 1
        delay = self._policy.respawn_delay(self._deaths)
        if delay > 0:
            self._sleep(delay)

    def _strike(self, item, reason: str) -> None:
        faults = self._strikes.get(item, 0) + 1
        self._strikes[item] = faults
        if faults >= self._policy.max_item_faults:
            record = QuarantineRecord(item=item, reason=reason, faults=faults)
            self.quarantined.append(record)
            logger.warning(
                "quarantining %r after %d %s fault(s)", item, faults, reason
            )
            self._on_complete(
                item, self._quarantine_outcome(item, reason, faults)
            )
        else:
            self._suspects.appendleft(item)

    @staticmethod
    def _reap(pool) -> None:
        """Kill and shut down a (possibly hung or broken) pool."""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except (OSError, ValueError):  # pragma: no cover - already gone
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    # -- degraded + shutdown paths ---------------------------------------
    def _drain_serially(self) -> None:
        """Respawn budget exhausted: run the remainder in this process."""
        remaining = sorted(
            list(self._suspects) + list(self._pending),
            key=self._order.__getitem__,
        )
        self._suspects.clear()
        self._pending.clear()
        for item in remaining:
            if self._stop is not None and self._stop.is_set():
                raise GridInterrupted(
                    "grid stopped by signal during serial degradation"
                )
            self._on_complete(item, self._run_serial(item))

    def _settle_and_raise(self, pool, error: BaseException) -> None:
        """A work-function exception is fatal: settle briefly, then raise.

        Waits only ``shutdown_grace`` for the sibling futures -- never
        ``cell_timeout`` (``None`` would block forever), so a hung
        sibling cannot deadlock the parent while it is trying to die.
        Whatever finished inside the grace window is reported (the
        caller journals the completed prefix); the pool is then reaped,
        because a hung worker would survive a plain executor shutdown.
        """
        if self._inflight:
            wait(tuple(self._inflight), timeout=self._policy.shutdown_grace)
        for future in sorted(
            [f for f in self._inflight if f.done()],
            key=lambda f: self._order[self._inflight[f]],
        ):
            item = self._inflight[future]
            try:
                outcome = future.result()
            except BaseException:  # noqa: BLE001 - best-effort settle
                continue
            self._on_complete(item, outcome)
        self._inflight.clear()
        self._reap(pool)
        raise error

    def _halt(self, pool) -> None:
        """Stop requested: harvest what is already done, reap the rest."""
        if self._inflight:
            wait(tuple(self._inflight), timeout=self._policy.shutdown_grace)
        for future in sorted(
            [f for f in self._inflight if f.done()],
            key=lambda f: self._order[self._inflight[f]],
        ):
            item = self._inflight.pop(future)
            try:
                outcome = future.result()
            except BaseException:  # noqa: BLE001 - dying anyway
                continue
            self._on_complete(item, outcome)
        self._inflight.clear()
        if pool is not None:
            self._reap(pool)
