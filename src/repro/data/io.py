"""JSON persistence for :class:`~repro.data.model.Dataset`."""

from __future__ import annotations

import json
from pathlib import Path

from repro.data.model import Dataset, PropertyInstance, PropertyRef
from repro.errors import DataError
from repro.ioutils import atomic_write_text

_FORMAT_VERSION = 1


def dataset_to_dict(dataset: Dataset) -> dict:
    """JSON-serialisable representation of a dataset."""
    return {
        "version": _FORMAT_VERSION,
        "name": dataset.name,
        "instances": [
            {
                "source": i.source,
                "property": i.property_name,
                "entity": i.entity_id,
                "value": i.value,
            }
            for i in dataset.instances
        ],
        "alignment": [
            {"source": ref.source, "property": ref.name, "reference": reference}
            for ref, reference in sorted(dataset.alignment.items())
        ],
    }


def dataset_from_dict(payload: dict) -> Dataset:
    """Inverse of :func:`dataset_to_dict`."""
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise DataError(f"unsupported dataset format version: {version!r}")
    try:
        instances = [
            PropertyInstance(
                source=item["source"],
                property_name=item["property"],
                entity_id=item["entity"],
                value=item["value"],
            )
            for item in payload["instances"]
        ]
        alignment = {
            PropertyRef(item["source"], item["property"]): item["reference"]
            for item in payload["alignment"]
        }
        name = payload["name"]
    except KeyError as missing:
        raise DataError(f"dataset payload missing key: {missing}") from None
    return Dataset(name=name, instances=instances, alignment=alignment)


def save_dataset_json(dataset: Dataset, path: str | Path) -> None:
    """Write a dataset to a JSON file (atomically: temp + ``os.replace``)."""
    atomic_write_text(path, json.dumps(dataset_to_dict(dataset), indent=2))


def load_dataset_json(path: str | Path) -> Dataset:
    """Read a dataset written by :func:`save_dataset_json`."""
    path = Path(path)
    if not path.exists():
        raise DataError(f"dataset file not found: {path}")
    return dataset_from_dict(json.loads(path.read_text()))
