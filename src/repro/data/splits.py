"""Source-level train/test splits.

The paper takes "a fraction of the sources of a dataset (at random) for
training" and runs 25 repetitions with "different random combinations of
training sources".  Splitting at the *source* level (not the pair level)
is essential: it guarantees the classifier never saw any property of a
test source during training.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.data.model import Dataset
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SourceSplit:
    """A partition of a dataset's sources into train and test."""

    train_sources: tuple[str, ...]
    test_sources: tuple[str, ...]

    def __post_init__(self) -> None:
        overlap = set(self.train_sources) & set(self.test_sources)
        if overlap:
            raise ConfigurationError(f"sources in both halves: {sorted(overlap)}")


def split_sources(
    dataset: Dataset,
    train_fraction: float,
    rng: np.random.Generator | None = None,
) -> SourceSplit:
    """Randomly assign ``train_fraction`` of the sources to training.

    At least one source lands on each side whenever the dataset has two or
    more sources, so both the training pair set and the test pair set are
    non-empty by construction (training additionally needs >= 2 train
    sources to contain any cross-source pair; fractions are rounded but
    clamped to keep 2 on the training side when possible).
    """
    if not 0.0 < train_fraction < 1.0:
        raise ConfigurationError(
            f"train_fraction must be in (0, 1), got {train_fraction}"
        )
    rng = rng if rng is not None else np.random.default_rng(0)
    sources = dataset.sources()
    if len(sources) < 2:
        raise ConfigurationError(
            f"dataset {dataset.name!r} has {len(sources)} source(s); need >= 2"
        )
    n_train = int(round(train_fraction * len(sources)))
    # Training needs two sources to form any cross-source pair; testing
    # needs at least one held-out source.
    n_train = max(2, min(n_train, len(sources) - 1)) if len(sources) > 2 else 1
    order = rng.permutation(len(sources))
    train = tuple(sorted(sources[int(i)] for i in order[:n_train]))
    test = tuple(sorted(sources[int(i)] for i in order[n_train:]))
    return SourceSplit(train_sources=train, test_sources=test)


def repeated_source_splits(
    dataset: Dataset,
    train_fraction: float,
    repetitions: int = 25,
    seed: int = 0,
) -> Iterator[SourceSplit]:
    """Yield ``repetitions`` independent random splits (the paper runs 25).

    Each repetition derives its generator from ``seed`` and the repetition
    index, so individual repetitions can be re-run in isolation.
    """
    if repetitions < 1:
        raise ConfigurationError(f"repetitions must be >= 1, got {repetitions}")
    for repetition in range(repetitions):
        rng = np.random.default_rng((seed, repetition))
        yield split_sources(dataset, train_fraction, rng)
