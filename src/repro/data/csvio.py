"""CSV ingestion for user-provided datasets.

Downstream users rarely have data in this library's JSON format; the
common interchange is two CSV files:

* an **instances** file with columns ``source, property, entity, value``
  (one property instance per row -- the paper's ``(p, e, v)`` tuples
  plus their source);
* an optional **alignment** file with columns
  ``source, property, reference`` mapping source properties to the
  reference ontology (the ground truth; omit it for pure prediction).

Malformed *rows* (short rows, empty required cells) are quarantined as
structured :class:`~repro.data.model.DataValidationError` records
instead of raising: a bad line in a million-row export must not crash
an experiment grid hours in.  The surviving dataset carries the records
(``Dataset.validation``) and per-source drop counts
(``Dataset.rows_dropped()``), and the stats layer reports them, so the
loss is visible rather than silent.  Dropped *alignment* rows
additionally log a warning at load time: they define the ground truth,
so losing one shifts recall/F1 of every evaluation on the dataset
rather than merely shrinking the input.

Structural problems split two ways.  States a file legitimately passes
through while an external writer is still producing it -- a zero-byte
file, a file whose header row has not landed yet -- raise
:class:`~repro.errors.TransientDataError`, so a follow-mode ingester
(:mod:`repro.ingest`) retries instead of quarantining a source
mid-write.  Problems that cannot heal by re-reading the same bytes -- a
missing file, a header that lacks required *columns* -- raise the
permanent :class:`~repro.errors.DataError`: those mean the file as a
whole is not what the caller thinks it is.
"""

from __future__ import annotations

import csv
import logging
from pathlib import Path

from repro.data.model import (
    Dataset,
    DataValidationError,
    PropertyInstance,
    PropertyRef,
)
from repro.errors import DataError, TransientDataError
from repro.ioutils import atomic_open_text

logger = logging.getLogger(__name__)

INSTANCE_COLUMNS = ("source", "property", "entity", "value")
ALIGNMENT_COLUMNS = ("source", "property", "reference")


def _read_rows(
    path: Path,
    required: tuple[str, ...],
    quarantined: list[DataValidationError],
) -> list[dict[str, str]]:
    """Rows of ``path`` with every required cell present and non-blank.

    Rows failing validation are appended to ``quarantined`` (with path,
    line number, best-effort source attribution and a reason) and
    dropped.  File-level problems raise :class:`DataError`; the states
    a half-written file passes through (zero bytes, no header row yet)
    raise the retryable :class:`TransientDataError` subclass instead,
    so followers can wait the writer out.
    """
    if not path.exists():
        raise DataError(f"CSV file not found: {path}")
    if path.stat().st_size == 0:
        raise TransientDataError(
            f"CSV file is empty (writer may still be producing it): {path}"
        )
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        # ``fieldnames`` is None for a file the reader finds empty and
        # ``[]`` when only blank lines have landed so far -- both are
        # states a half-written file passes through.
        if not reader.fieldnames:
            raise TransientDataError(
                f"CSV file has no header row yet "
                f"(writer may still be producing it): {path}"
            )
        missing = [column for column in required if column not in reader.fieldnames]
        if missing:
            raise DataError(
                f"{path} is missing required columns {missing}; "
                f"found {reader.fieldnames}"
            )
        rows = []
        for line_number, row in enumerate(reader, start=2):
            short = [column for column in required if row.get(column) is None]
            if short:
                quarantined.append(
                    DataValidationError(
                        path=str(path),
                        line=line_number,
                        reason=f"short row: missing column(s) {short}",
                        source=(row.get("source") or "").strip() or None,
                    )
                )
                continue
            empty = [column for column in required if not row[column].strip()]
            if empty:
                quarantined.append(
                    DataValidationError(
                        path=str(path),
                        line=line_number,
                        reason=f"empty value in column(s) {empty}",
                        source=(row.get("source") or "").strip() or None,
                    )
                )
                continue
            rows.append(row)
        return rows


def load_dataset_csv(
    instances_path: str | Path,
    alignment_path: str | Path | None = None,
    name: str | None = None,
) -> Dataset:
    """Build a :class:`Dataset` from instance (and optional alignment) CSVs.

    Malformed rows are quarantined into ``Dataset.validation`` rather
    than raising (see module docstring).  Alignment rows referring to
    properties absent from the instance file are rejected -- they would
    silently distort recall.
    """
    instances_path = Path(instances_path)
    quarantined: list[DataValidationError] = []
    instance_rows = _read_rows(instances_path, INSTANCE_COLUMNS, quarantined)
    instances = [
        PropertyInstance(
            source=row["source"].strip(),
            property_name=row["property"].strip(),
            entity_id=row["entity"].strip(),
            value=row["value"],
        )
        for row in instance_rows
    ]
    alignment: dict[PropertyRef, str] = {}
    if alignment_path is not None:
        alignment_path = Path(alignment_path)
        dropped_before_alignment = len(quarantined)
        for row in _read_rows(alignment_path, ALIGNMENT_COLUMNS, quarantined):
            ref = PropertyRef(row["source"].strip(), row["property"].strip())
            alignment[ref] = row["reference"].strip()
        alignment_dropped = len(quarantined) - dropped_before_alignment
        if alignment_dropped:
            # Alignment rows are ground truth: dropping one silently
            # shifts recall/F1 of every evaluation on this dataset, so
            # the quarantine is loud even though it does not raise.
            logger.warning(
                "%d malformed alignment row(s) quarantined from %s; "
                "ground-truth coverage is reduced and recall/F1 will "
                "shift -- inspect Dataset.validation (or `repro stats`) "
                "and repair the file",
                alignment_dropped,
                alignment_path,
            )
    return Dataset(
        name=name or instances_path.stem,
        instances=instances,
        alignment=alignment,
        validation=tuple(quarantined),
    )


def save_dataset_csv(
    dataset: Dataset,
    instances_path: str | Path,
    alignment_path: str | Path | None = None,
) -> None:
    """Write a dataset as CSV (inverse of :func:`load_dataset_csv`).

    Both files are written atomically (temp sibling + rename): datasets
    are experiment inputs, and a half-written instances file silently
    changes every result computed from it (REP002).
    """
    with atomic_open_text(instances_path, newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(INSTANCE_COLUMNS)
        for instance in dataset.instances:
            writer.writerow(
                [instance.source, instance.property_name, instance.entity_id, instance.value]
            )
    if alignment_path is not None:
        with atomic_open_text(alignment_path, newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(ALIGNMENT_COLUMNS)
            for ref, reference in sorted(dataset.alignment.items()):
                writer.writerow([ref.source, ref.name, reference])
