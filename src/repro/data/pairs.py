"""Cross-source property pairs: enumeration, labelling, negative sampling.

Implements the evaluation protocol of Section V-B:

* candidate pairs are all pairs of properties from *different* sources
  (Algorithm 1 lines 6-8 only pairs across sources);
* a pair is positive when both properties align to the same reference
  property;
* "the training data consists of two negative (non-matching) pairs of
  properties for every positive (matching) pair, and the negative pairs
  are randomly selected" -- negative sampling applies to the training
  side only; the test side keeps every candidate pair.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.data.model import Dataset, PropertyRef
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LabeledPair:
    """An ordered property pair with its ground-truth label."""

    left: PropertyRef
    right: PropertyRef
    label: bool

    @property
    def key(self) -> frozenset[PropertyRef]:
        """Unordered identity of the pair."""
        return frozenset((self.left, self.right))


@dataclass
class PairSet:
    """A list of labelled pairs with convenience accessors."""

    pairs: list[LabeledPair]

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    def positives(self) -> list[LabeledPair]:
        """Only the matching pairs."""
        return [pair for pair in self.pairs if pair.label]

    def negatives(self) -> list[LabeledPair]:
        """Only the non-matching pairs."""
        return [pair for pair in self.pairs if not pair.label]

    def labels(self) -> np.ndarray:
        """Labels as an int array (1 = match).

        Computed once and cached read-only: pair sets are shared across
        grid cells, and every cell needs the same label vector.
        """
        cached = getattr(self, "_labels", None)
        if cached is None:
            cached = np.array(
                [int(pair.label) for pair in self.pairs], dtype=np.int64
            )
            cached.setflags(write=False)
            self._labels = cached
        return cached

    def refs(self) -> list[PropertyRef]:
        """All distinct property refs mentioned by the pairs, sorted."""
        seen: set[PropertyRef] = set()
        for pair in self.pairs:
            seen.add(pair.left)
            seen.add(pair.right)
        return sorted(seen)


def source_block_bounds(
    properties: Sequence[PropertyRef],
) -> list[tuple[int, int]]:
    """``(start, end)`` of each same-source run in a sorted ref sequence.

    :meth:`Dataset.properties` returns refs sorted by ``(source, name)``,
    so every source occupies one contiguous block.  Working on block
    bounds lets pair enumeration skip same-source pairs structurally
    instead of comparing ``.source`` strings per pair.
    """
    bounds: list[tuple[int, int]] = []
    start = 0
    for index in range(1, len(properties) + 1):
        if (
            index == len(properties)
            or properties[index].source != properties[start].source
        ):
            bounds.append((start, index))
            start = index
    return bounds


def cross_source_index_pairs(
    properties: Sequence[PropertyRef],
) -> Iterator[tuple[int, int]]:
    """Yield sorted ``(i, j)`` index pairs spanning two different sources.

    The lexicographic ``(i, j)`` order over sorted properties is exactly
    the historical nested-loop enumeration order, so consumers that pin
    byte-identical pair sequences can build on this generator.  Unlike
    the nested loop it allocates nothing per pair (no ``frozenset`` keys)
    and performs no per-pair source comparison.
    """
    total = len(properties)
    for start, end in source_block_bounds(properties):
        for i in range(start, end):
            yield from ((i, j) for j in range(end, total))


def build_pairs(
    dataset: Dataset,
    sources: list[str] | None = None,
    *,
    within: bool = True,
) -> PairSet:
    """Enumerate labelled cross-source pairs.

    Parameters
    ----------
    dataset:
        The dataset providing properties and ground truth.
    sources:
        When given, restricts which sources participate.
    within:
        ``True`` (default) keeps pairs where *both* sources are in
        ``sources`` -- the paper's training regime ("examples that involve
        two sources of data in the training set").  ``False`` keeps the
        complement: pairs where at least one source is outside
        ``sources`` -- the paper's test regime ("test it with the rest").
    """
    all_sources = dataset.sources()
    if sources is None:
        selected = set(all_sources)
    else:
        unknown = set(sources) - set(all_sources)
        if unknown:
            raise ConfigurationError(f"unknown sources: {sorted(unknown)}")
        selected = set(sources)
    properties = dataset.properties()
    inside = [ref.source in selected for ref in properties]
    pairs: list[LabeledPair] = []
    for i, j in cross_source_index_pairs(properties):
        if within != (inside[i] and inside[j]):
            continue
        left, right = properties[i], properties[j]
        pairs.append(LabeledPair(left, right, dataset.is_match(left, right)))
    return PairSet(pairs)


def sample_training_pairs(
    candidates: PairSet,
    negative_ratio: float = 2.0,
    rng: np.random.Generator | None = None,
) -> PairSet:
    """Down-sample negatives to ``negative_ratio`` per positive.

    All positives are kept.  When there are fewer negatives than the ratio
    requires, all negatives are kept.  Order is shuffled so mini-batch
    training does not see label blocks.
    """
    if negative_ratio < 0:
        raise ConfigurationError(f"negative_ratio must be >= 0, got {negative_ratio}")
    rng = rng if rng is not None else np.random.default_rng(0)
    positives = candidates.positives()
    negatives = candidates.negatives()
    wanted = int(round(negative_ratio * len(positives)))
    if wanted < len(negatives):
        chosen_idx = rng.choice(len(negatives), size=wanted, replace=False)
        negatives = [negatives[int(i)] for i in chosen_idx]
    combined = positives + negatives
    order = rng.permutation(len(combined))
    return PairSet([combined[int(i)] for i in order])
