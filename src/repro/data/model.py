"""Core data model: sources, property instances, datasets, alignments.

Follows Section III of the paper:

* a **source** is where data comes from (a website, a database, ...);
* a **property instance** is a tuple ``(p, e, v)`` of property name, entity
  id and literal value;
* the **class schema** of a source is simply the set of differently-named
  properties observed for its entities;
* two properties (from different sources) **match** when both are aligned
  to the same property of a reference ontology.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from dataclasses import dataclass, field

from repro.errors import DataError


@dataclass(frozen=True, order=True)
class PropertyRef:
    """A property identified by its source and its (source-local) name."""

    source: str
    name: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.source}::{self.name}"


@dataclass(frozen=True)
class DataValidationError:
    """One quarantined input row: a structured record, not an exception.

    Loaders that meet a malformed row mid-file (short row, empty
    required cell) must not crash a grid that is hours into its run;
    they drop the row, record *what* was dropped and *why* here, and
    surface the counts through :class:`Dataset` stats so silent data
    loss is impossible.
    """

    path: str
    line: int
    reason: str
    source: str | None = None

    def describe(self) -> str:
        where = f"{self.path}:{self.line}"
        prefix = f"[{self.source}] " if self.source else ""
        return f"{where}: {prefix}{self.reason}"


@dataclass(frozen=True)
class PropertyInstance:
    """One observed value of a property: the paper's ``(p, e, v)`` tuple.

    ``source`` is carried on the instance (rather than looked up through
    the entity) because the matching task is defined per source.
    """

    source: str
    property_name: str
    entity_id: str
    value: str

    @property
    def ref(self) -> PropertyRef:
        """The :class:`PropertyRef` this instance belongs to."""
        return PropertyRef(self.source, self.property_name)


@dataclass
class Dataset:
    """A multi-source collection of property instances with ground truth.

    Parameters
    ----------
    name:
        Dataset identifier ("cameras", "phones", ...).
    instances:
        All property instances across all sources.
    alignment:
        Maps each :class:`PropertyRef` to the name of the reference-ontology
        property it is aligned to.  Properties without an alignment entry
        are unaligned and match nothing.
    validation:
        :class:`DataValidationError` records for input rows the loader
        quarantined instead of ingesting (empty for clean or generated
        data).  Not part of the content fingerprint -- two datasets with
        identical surviving instances are the same dataset.
    """

    name: str
    instances: list[PropertyInstance]
    alignment: dict[PropertyRef, str] = field(default_factory=dict)
    validation: tuple[DataValidationError, ...] = ()

    def __post_init__(self) -> None:
        self._instances_by_ref: dict[PropertyRef, list[PropertyInstance]] = defaultdict(list)
        for instance in self.instances:
            self._instances_by_ref[instance.ref].append(instance)
        unknown = [ref for ref in self.alignment if ref not in self._instances_by_ref]
        if unknown:
            sample = ", ".join(str(ref) for ref in unknown[:3])
            raise DataError(
                f"alignment refers to {len(unknown)} properties with no instances "
                f"(e.g. {sample})"
            )

    def fingerprint(self) -> str:
        """Content fingerprint: name, structural counts and a content hash.

        Two datasets that merely share a ``name`` -- even with identical
        instance and alignment *counts* -- get different fingerprints
        whenever any instance tuple or alignment entry differs, which is
        what per-dataset caches (feature tables, run-journal keys) must
        key on instead of the bare name.  The hash covers the sorted
        ``(source, property, entity, value)`` tuples plus the alignment,
        so it is order-insensitive.

        The value is computed once and cached; a ``Dataset`` must not be
        mutated after its fingerprint (or any derived cache key) has been
        used.  The transformation methods (:meth:`restrict_to_sources`,
        :meth:`cap_entities_per_source`) already return new instances.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            hasher = hashlib.sha256()
            for instance in sorted(
                self.instances,
                key=lambda i: (i.source, i.property_name, i.entity_id, i.value),
            ):
                hasher.update(
                    "\x1f".join(
                        (
                            instance.source,
                            instance.property_name,
                            instance.entity_id,
                            instance.value,
                        )
                    ).encode("utf-8")
                )
                hasher.update(b"\x1e")
            for ref, reference in sorted(self.alignment.items()):
                hasher.update(
                    "\x1f".join((ref.source, ref.name, reference)).encode("utf-8")
                )
                hasher.update(b"\x1e")
            cached = (
                f"{self.name}"
                f":i{len(self.instances)}"
                f":a{len(self.alignment)}"
                f":{hasher.hexdigest()[:16]}"
            )
            self._fingerprint = cached
        return cached

    def rows_dropped(self) -> dict[str, int]:
        """Quarantined input rows per source (``"?"`` when unattributable)."""
        dropped: dict[str, int] = {}
        for record in self.validation:
            key = record.source if record.source else "?"
            dropped[key] = dropped.get(key, 0) + 1
        return dropped

    # -- schema-level accessors ---------------------------------------------
    def sources(self) -> list[str]:
        """Sorted list of all source identifiers."""
        return sorted({instance.source for instance in self.instances})

    def properties(self, source: str | None = None) -> list[PropertyRef]:
        """All properties, optionally restricted to one source, sorted."""
        refs = self._instances_by_ref.keys()
        if source is not None:
            refs = (ref for ref in refs if ref.source == source)
        return sorted(refs)

    def schema_of(self, source: str) -> list[str]:
        """The class schema of a source: its distinct property names."""
        return sorted({ref.name for ref in self.properties(source)})

    def entities(self, source: str | None = None) -> list[str]:
        """Distinct entity ids, optionally restricted to one source."""
        if source is None:
            return sorted({i.entity_id for i in self.instances})
        return sorted({i.entity_id for i in self.instances if i.source == source})

    # -- instance-level accessors --------------------------------------------
    def instances_of(self, ref: PropertyRef) -> list[PropertyInstance]:
        """All instances of one property (empty for unknown refs)."""
        return list(self._instances_by_ref.get(ref, ()))

    def values_of(self, ref: PropertyRef) -> list[str]:
        """All literal values of one property."""
        return [instance.value for instance in self._instances_by_ref.get(ref, ())]

    # -- ground truth ---------------------------------------------------------
    def reference_of(self, ref: PropertyRef) -> str | None:
        """Reference-ontology property this ref is aligned to, or None."""
        return self.alignment.get(ref)

    def is_match(self, a: PropertyRef, b: PropertyRef) -> bool:
        """Ground truth: both aligned to the same reference property.

        Pairs within the same source are never matches for the task
        (matching is defined across sources).
        """
        if a.source == b.source:
            return False
        reference_a = self.alignment.get(a)
        return reference_a is not None and reference_a == self.alignment.get(b)

    def matching_pairs(self) -> set[frozenset[PropertyRef]]:
        """All unordered cross-source matching pairs."""
        by_reference: dict[str, list[PropertyRef]] = defaultdict(list)
        for ref, reference in self.alignment.items():
            by_reference[reference].append(ref)
        pairs: set[frozenset[PropertyRef]] = set()
        for refs in by_reference.values():
            for i, first in enumerate(refs):
                for second in refs[i + 1 :]:
                    if first.source != second.source:
                        pairs.add(frozenset((first, second)))
        return pairs

    def merged_with(self, other: "Dataset") -> "Dataset":
        """A new dataset with ``other``'s sources added to this one.

        The incremental-ingestion primitive behind
        ``PairFeatureStore.add_source``: source sets must be disjoint
        (the matching task is defined per source, so re-ingesting an
        existing source would silently duplicate its instances).  The
        merged dataset keeps this dataset's name; instances are
        concatenated base-first so per-property value order -- and with
        it every content-fingerprinted feature row -- is preserved.
        """
        overlap = set(self.sources()) & set(other.sources())
        if overlap:
            raise DataError(
                f"sources already present in dataset: {sorted(overlap)}"
            )
        alignment = dict(self.alignment)
        alignment.update(other.alignment)
        return Dataset(
            name=self.name,
            instances=self.instances + other.instances,
            alignment=alignment,
            validation=self.validation + other.validation,
        )

    def restrict_to_sources(self, sources: set[str] | list[str]) -> "Dataset":
        """A new dataset containing only the given sources."""
        wanted = set(sources)
        missing = wanted - set(self.sources())
        if missing:
            raise DataError(f"unknown sources: {sorted(missing)}")
        instances = [i for i in self.instances if i.source in wanted]
        alignment = {
            ref: reference
            for ref, reference in self.alignment.items()
            if ref.source in wanted
        }
        return Dataset(name=self.name, instances=instances, alignment=alignment)

    def cap_entities_per_source(self, cap: int) -> "Dataset":
        """Keep at most ``cap`` entities per source (the paper caps at 100).

        Entities are kept in sorted-id order so capping is deterministic.
        """
        if cap < 1:
            raise DataError(f"entity cap must be >= 1, got {cap}")
        keep: set[tuple[str, str]] = set()
        for source in self.sources():
            for entity in self.entities(source)[:cap]:
                keep.add((source, entity))
        instances = [
            i for i in self.instances if (i.source, i.entity_id) in keep
        ]
        surviving_refs = {i.ref for i in instances}
        alignment = {
            ref: reference
            for ref, reference in self.alignment.items()
            if ref in surviving_refs
        }
        return Dataset(name=self.name, instances=instances, alignment=alignment)
