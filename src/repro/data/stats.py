"""Dataset statistics, matching the quantities quoted in Section V-B."""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.model import Dataset


@dataclass(frozen=True)
class DatasetStats:
    """Structural summary of a dataset."""

    name: str
    n_sources: int
    n_entities: int
    n_properties: int
    n_instances: int
    n_matching_pairs: int
    n_reference_properties: int
    min_entities_per_source: int
    max_entities_per_source: int
    n_rows_dropped: int = 0

    @property
    def entity_balance(self) -> float:
        """min/max entities per source; 1.0 for a perfectly balanced dataset.

        The paper distinguishes the balanced camera dataset from the
        imbalanced ("low-quality") WDC datasets by exactly this property.
        """
        if self.max_entities_per_source == 0:
            return 0.0
        return self.min_entities_per_source / self.max_entities_per_source

    def describe(self) -> str:
        """One-line human-readable summary."""
        line = (
            f"{self.name}: {self.n_sources} sources, {self.n_entities} entities, "
            f"{self.n_properties} properties, {self.n_instances} instances, "
            f"{self.n_matching_pairs} matching pairs "
            f"(balance {self.entity_balance:.2f})"
        )
        if self.n_rows_dropped:
            line += f" [{self.n_rows_dropped} input row(s) quarantined on load]"
        return line


def dataset_stats(dataset: Dataset) -> DatasetStats:
    """Compute :class:`DatasetStats` for a dataset."""
    sources = dataset.sources()
    per_source_entities = [len(dataset.entities(source)) for source in sources]
    return DatasetStats(
        name=dataset.name,
        n_sources=len(sources),
        n_entities=len(dataset.entities()),
        n_properties=len(dataset.properties()),
        n_instances=len(dataset.instances),
        n_matching_pairs=len(dataset.matching_pairs()),
        n_reference_properties=len(set(dataset.alignment.values())),
        min_entities_per_source=min(per_source_entities, default=0),
        max_entities_per_source=max(per_source_entities, default=0),
        n_rows_dropped=len(dataset.validation),
    )
