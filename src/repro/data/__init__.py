"""Data model for multi-source property matching.

Implements the paper's problem definition (Section III): sources, entities
with classes, property instances ``(p, e, v)``, class schemas as the union
of per-source property names, and the reference-ontology alignment that
defines when two properties match.

* :mod:`repro.data.model` -- the core dataclasses and :class:`Dataset`.
* :mod:`repro.data.io` -- JSON persistence for datasets.
* :mod:`repro.data.pairs` -- cross-source pair enumeration, ground-truth
  labelling and 2:1 negative sampling.
* :mod:`repro.data.splits` -- source-level train/test splits and repeated
  random splits.
* :mod:`repro.data.stats` -- dataset statistics (Table-style summaries).
"""

from repro.data.model import (
    Dataset,
    DataValidationError,
    PropertyInstance,
    PropertyRef,
)
from repro.data.csvio import load_dataset_csv, save_dataset_csv
from repro.data.io import load_dataset_json, save_dataset_json
from repro.data.pairs import LabeledPair, PairSet, build_pairs, sample_training_pairs
from repro.data.splits import SourceSplit, repeated_source_splits, split_sources
from repro.data.stats import DatasetStats, dataset_stats

__all__ = [
    "PropertyInstance",
    "PropertyRef",
    "Dataset",
    "DataValidationError",
    "save_dataset_json",
    "load_dataset_json",
    "save_dataset_csv",
    "load_dataset_csv",
    "LabeledPair",
    "PairSet",
    "build_pairs",
    "sample_training_pairs",
    "SourceSplit",
    "split_sources",
    "repeated_source_splits",
    "DatasetStats",
    "dataset_stats",
]
