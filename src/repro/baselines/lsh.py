"""Duan et al.: instance-based matching with minhash LSH.

The original work matches large ontologies purely from instance data:
every element is summarised by a minhash signature of its instance-token
set, locality-sensitive hashing with small bands proposes candidates, and
the signature agreement estimates the Jaccard similarity of the
underlying token sets.  The paper runs it "using minhash with a band
size of 1".

Being name-blind, this matcher only works where matching properties
share literal value tokens across sources (units, enum spellings, shared
product codes) -- which is why Table II shows it respectable on the
well-populated camera dataset and recall-starved on the sparse ones.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import Matcher
from repro.data.model import Dataset, PropertyRef
from repro.data.pairs import LabeledPair
from repro.errors import ConfigurationError

# Re-exported for compatibility: the signature machinery moved to
# repro.text.minhash so blocking can import it without the baselines
# (and transitively the whole core) in its import graph.
from repro.text.minhash import MinHasher, hash_token  # noqa: F401
from repro.text.tokenize import tokenize


class LshMatcher(Matcher):
    """Unsupervised instance-based minhash matcher (Duan et al. style)."""

    name = "LSH"
    is_supervised = False

    def __init__(
        self,
        num_hashes: int = 64,
        band_size: int = 1,
        threshold: float = 0.3,
        seed: int = 0,
    ) -> None:
        if band_size < 1 or num_hashes % band_size != 0:
            raise ConfigurationError("band_size must divide num_hashes")
        self.threshold = threshold
        self.band_size = band_size
        self._hasher = MinHasher(num_hashes=num_hashes, seed=seed)
        self._signatures: dict[PropertyRef, np.ndarray] = {}
        self._prepared_for: str | None = None

    def prepare(self, dataset: Dataset) -> None:
        """Compute minhash signatures for every property's token set."""
        self._signatures = {}
        for ref in dataset.properties():
            tokens: set[str] = set()
            for value in dataset.values_of(ref):
                tokens.update(token.lower() for token in tokenize(value))
            self._signatures[ref] = self._hasher.signature(tokens)
        self._prepared_for = dataset.name

    def _candidate(self, sig_a: np.ndarray, sig_b: np.ndarray) -> bool:
        """LSH banding: candidate when any band agrees fully."""
        bands = len(sig_a) // self.band_size
        for band in range(bands):
            start = band * self.band_size
            stop = start + self.band_size
            if np.array_equal(sig_a[start:stop], sig_b[start:stop]):
                return True
        return False

    def score_pairs(self, dataset: Dataset, pairs: list[LabeledPair]) -> np.ndarray:
        if self._prepared_for != dataset.name:
            self.prepare(dataset)
        scores = np.zeros(len(pairs))
        for i, pair in enumerate(pairs):
            sig_left = self._signatures[pair.left]
            sig_right = self._signatures[pair.right]
            if not self._candidate(sig_left, sig_right):
                continue
            scores[i] = self._hasher.estimate_jaccard(sig_left, sig_right)
        return scores
