"""Duan et al.: instance-based matching with minhash LSH.

The original work matches large ontologies purely from instance data:
every element is summarised by a minhash signature of its instance-token
set, locality-sensitive hashing with small bands proposes candidates, and
the signature agreement estimates the Jaccard similarity of the
underlying token sets.  The paper runs it "using minhash with a band
size of 1".

Being name-blind, this matcher only works where matching properties
share literal value tokens across sources (units, enum spellings, shared
product codes) -- which is why Table II shows it respectable on the
well-populated camera dataset and recall-starved on the sparse ones.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import Matcher
from repro.data.model import Dataset, PropertyRef
from repro.data.pairs import LabeledPair
from repro.errors import ConfigurationError
from repro.text.tokenize import tokenize

_MERSENNE_PRIME = (1 << 61) - 1


class MinHasher:
    """Classic universal-hash minhash over string token sets."""

    def __init__(self, num_hashes: int = 64, seed: int = 0) -> None:
        if num_hashes < 1:
            raise ConfigurationError(f"num_hashes must be >= 1, got {num_hashes}")
        rng = np.random.default_rng(seed)
        self.num_hashes = num_hashes
        self._a = rng.integers(1, _MERSENNE_PRIME, size=num_hashes, dtype=np.int64)
        self._b = rng.integers(0, _MERSENNE_PRIME, size=num_hashes, dtype=np.int64)

    def signature(self, tokens: set[str]) -> np.ndarray:
        """Minhash signature of a token set (all-max for the empty set)."""
        if not tokens:
            return np.full(self.num_hashes, np.iinfo(np.int64).max, dtype=np.int64)
        token_hashes = np.array(
            [hash_token(token) for token in tokens], dtype=np.int64
        )
        # (num_hashes, n_tokens) universal hashes, minimised per row.
        products = (
            self._a[:, None] * token_hashes[None, :] + self._b[:, None]
        ) % _MERSENNE_PRIME
        return products.min(axis=1)

    @staticmethod
    def estimate_jaccard(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
        """Fraction of agreeing signature rows ~ Jaccard similarity."""
        return float((sig_a == sig_b).mean())


def hash_token(token: str) -> int:
    """Stable 61-bit token hash (Python's hash() is randomised per run)."""
    import hashlib

    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") % _MERSENNE_PRIME


class LshMatcher(Matcher):
    """Unsupervised instance-based minhash matcher (Duan et al. style)."""

    name = "LSH"
    is_supervised = False

    def __init__(
        self,
        num_hashes: int = 64,
        band_size: int = 1,
        threshold: float = 0.3,
        seed: int = 0,
    ) -> None:
        if band_size < 1 or num_hashes % band_size != 0:
            raise ConfigurationError("band_size must divide num_hashes")
        self.threshold = threshold
        self.band_size = band_size
        self._hasher = MinHasher(num_hashes=num_hashes, seed=seed)
        self._signatures: dict[PropertyRef, np.ndarray] = {}
        self._prepared_for: str | None = None

    def prepare(self, dataset: Dataset) -> None:
        """Compute minhash signatures for every property's token set."""
        self._signatures = {}
        for ref in dataset.properties():
            tokens: set[str] = set()
            for value in dataset.values_of(ref):
                tokens.update(token.lower() for token in tokenize(value))
            self._signatures[ref] = self._hasher.signature(tokens)
        self._prepared_for = dataset.name

    def _candidate(self, sig_a: np.ndarray, sig_b: np.ndarray) -> bool:
        """LSH banding: candidate when any band agrees fully."""
        bands = len(sig_a) // self.band_size
        for band in range(bands):
            start = band * self.band_size
            stop = start + self.band_size
            if np.array_equal(sig_a[start:stop], sig_b[start:stop]):
                return True
        return False

    def score_pairs(self, dataset: Dataset, pairs: list[LabeledPair]) -> np.ndarray:
        if self._prepared_for != dataset.name:
            self.prepare(dataset)
        scores = np.zeros(len(pairs))
        for i, pair in enumerate(pairs):
            sig_left = self._signatures[pair.left]
            sig_right = self._signatures[pair.right]
            if not self._candidate(sig_left, sig_right):
                continue
            scores[i] = self._hasher.estimate_jaccard(sig_left, sig_right)
        return scores
