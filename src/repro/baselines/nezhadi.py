"""Nezhadi et al.: supervised ontology alignment over string similarities.

The original proposal trains classical classifiers (decision trees,
AdaBoost, k-NN, naive Bayes) on vectors of concept-similarity measures.
Its defining design point relative to LEAPME -- stated in the paper's
related work -- is that "instance similarities or word embeddings have
not been utilized": its features are string-level name similarities only.

Feature vector: the eight Table I name distances plus the token-set
Jaccard distance.  The classifier family is pluggable; AdaBoost over
decision stumps is the default (the strongest in the original study).
"""

from __future__ import annotations

import numpy as np

from repro.core.api import Matcher
from repro.data.model import Dataset
from repro.data.pairs import LabeledPair, PairSet
from repro.errors import ConfigurationError, NotFittedError
from repro.ml.adaboost import AdaBoostClassifier
from repro.ml.base import Classifier
from repro.ml.knn import KNeighborsClassifier
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.tree import DecisionTreeClassifier
from repro.text.normalize import token_set
from repro.text.similarity import name_distance_vector

_CLASSIFIERS = {
    "adaboost": lambda: AdaBoostClassifier(n_estimators=40, max_depth=2),
    "tree": lambda: DecisionTreeClassifier(max_depth=8),
    "knn": lambda: KNeighborsClassifier(n_neighbors=5, weights="distance"),
    "naive_bayes": GaussianNaiveBayes,
}


def _pair_features(left: str, right: str) -> np.ndarray:
    distances = name_distance_vector(left, right)
    tokens_left = token_set(left)
    tokens_right = token_set(right)
    if tokens_left or tokens_right:
        jaccard = 1.0 - len(tokens_left & tokens_right) / len(tokens_left | tokens_right)
    else:
        jaccard = 0.0
    return np.array(distances + [jaccard])


class NezhadiMatcher(Matcher):
    """Supervised string-similarity matcher (Nezhadi et al. style)."""

    is_supervised = True

    def __init__(self, classifier: str = "adaboost", threshold: float = 0.6) -> None:
        if classifier not in _CLASSIFIERS:
            known = ", ".join(sorted(_CLASSIFIERS))
            raise ConfigurationError(
                f"unknown classifier {classifier!r}; known: {known}"
            )
        self.name = "Nezhadi" if classifier == "adaboost" else f"Nezhadi[{classifier}]"
        self.classifier_kind = classifier
        self.threshold = threshold
        self._model: Classifier | None = None
        self._cache: dict[tuple[str, str], np.ndarray] = {}

    def _features(self, pairs: list[LabeledPair]) -> np.ndarray:
        rows = np.empty((len(pairs), 9))
        for i, pair in enumerate(pairs):
            key = (pair.left.name, pair.right.name)
            if key[0] > key[1]:
                key = (key[1], key[0])
            cached = self._cache.get(key)
            if cached is None:
                cached = _pair_features(*key)
                self._cache[key] = cached
            rows[i] = cached
        return rows

    @property
    def is_fitted(self) -> bool:
        """Whether the pair classifier has been trained."""
        return self._model is not None

    def fit(self, dataset: Dataset, training_pairs: PairSet) -> None:
        features = self._features(training_pairs.pairs)
        self._model = _CLASSIFIERS[self.classifier_kind]()
        self._model.fit(features, training_pairs.labels())

    def score_pairs(self, dataset: Dataset, pairs: list[LabeledPair]) -> np.ndarray:
        if self._model is None:
            raise NotFittedError("NezhadiMatcher must be fitted before scoring")
        features = self._features(pairs)
        probabilities = self._model.predict_proba(features)
        positive_column = int(np.argmax(self._model.classes_ == 1))
        return probabilities[:, positive_column]
