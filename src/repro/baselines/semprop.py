"""SemProp-style matcher: syntactic + semantic (embedding) linkage.

SemProp (Fernandez et al., ICDE 2018) links schema elements through two
unsupervised channels: a syntactic matcher (SynM) over name similarity
and a semantic matcher (SeMa) that relates *coherent groups* of word
embeddings.  SeMa accepts a link when the embedding coherence is high
(positive threshold) and explicitly rejects it when the coherence is low
(negative threshold), with a gap in between where only syntactic
evidence counts.

The paper runs it with thresholds "0.2 for SynM, 0.2 for SeMa(-), and
0.4 for SeMa(+)", which we adopt as defaults:

* ``sema`` is the *coherence* of the two names' word groups: every word
  of one name is matched to its most similar word in the other name and
  the per-word best scores are averaged, symmetrised by taking the worse
  direction -- a group is only coherent if all of its words find a
  counterpart;
* ``sema >= sema_positive`` -> semantic link (score = sema);
* ``sema < sema_negative`` -> rejected regardless of syntax (score ~ 0);
* otherwise a syntactic link forms if the trigram-cosine similarity of
  the names clears ``synm`` (score = that similarity).

An optional ``reciprocal_best`` selection pass (off by default, matching
SemProp's plain thresholded link generation) additionally demotes pairs
that are not the best-scoring link of both endpoints towards the other
endpoint's source -- a stricter selection regime useful when the
embedding space has a high anisotropic noise floor.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import Matcher
from repro.data.model import Dataset
from repro.data.pairs import LabeledPair
from repro.embeddings.base import WordEmbeddings, cosine
from repro.errors import ConfigurationError
from repro.text.ngrams import ngram_cosine_distance
from repro.text.tokenize import words


class SemPropMatcher(Matcher):
    """Unsupervised embedding-coherence matcher (SemProp style)."""

    name = "SemProp"
    is_supervised = False

    def __init__(
        self,
        embeddings: WordEmbeddings,
        synm: float = 0.2,
        sema_negative: float = 0.2,
        sema_positive: float = 0.4,
        threshold: float = 0.5,
        reciprocal_best: bool = False,
    ) -> None:
        if not 0.0 <= sema_negative <= sema_positive <= 1.0:
            raise ConfigurationError(
                "need 0 <= sema_negative <= sema_positive <= 1"
            )
        self.embeddings = embeddings
        self.synm = synm
        self.sema_negative = sema_negative
        self.sema_positive = sema_positive
        self.threshold = threshold
        self.reciprocal_best = reciprocal_best
        self._word_vectors: dict[str, list[np.ndarray]] = {}

    def _vectors(self, name: str) -> list[np.ndarray]:
        cached = self._word_vectors.get(name)
        if cached is None:
            cached = [self.embeddings.vector(word) for word in words(name)]
            self._word_vectors[name] = cached
        return cached

    def _coherence(self, left: str, right: str) -> float:
        """Symmetric best-match coherence of the two names' word groups."""
        vectors_left = self._vectors(left)
        vectors_right = self._vectors(right)
        if not vectors_left or not vectors_right:
            return 0.0

        def directed(sources: list[np.ndarray], targets: list[np.ndarray]) -> float:
            best_scores = [
                max(cosine(source, target) for target in targets)
                for source in sources
            ]
            return float(np.mean(best_scores))

        return min(
            directed(vectors_left, vectors_right),
            directed(vectors_right, vectors_left),
        )

    def _score(self, left: str, right: str) -> float:
        sema = self._coherence(left, right)
        if sema >= self.sema_positive:
            # Semantic link; map [positive, 1] onto [threshold, 1] so any
            # accepted link clears the decision threshold.
            span = 1.0 - self.sema_positive
            fraction = (sema - self.sema_positive) / span if span > 0 else 1.0
            return self.threshold + (1.0 - self.threshold) * fraction
        if sema < self.sema_negative:
            # SeMa(-) veto: strongly unrelated semantics kill the link.
            return max(0.0, sema)
        # Undecided semantics: fall back to the syntactic matcher.
        synm_similarity = 1.0 - ngram_cosine_distance(left.lower(), right.lower())
        if synm_similarity >= max(self.synm, 0.5):
            return self.threshold + (1.0 - self.threshold) * synm_similarity * 0.99
        return min(synm_similarity, self.threshold * 0.9)

    def score_pairs(self, dataset: Dataset, pairs: list[LabeledPair]) -> np.ndarray:
        scores = np.empty(len(pairs))
        for i, pair in enumerate(pairs):
            scores[i] = self._score(pair.left.name, pair.right.name)
        if self.reciprocal_best:
            return self._reciprocal_best(pairs, scores)
        return scores

    def _reciprocal_best(
        self, pairs: list[LabeledPair], scores: np.ndarray, slack: float = 0.02
    ) -> np.ndarray:
        """Demote links that are not (near-)best for both endpoints.

        For every (property, counterpart source) the best score is found;
        a pair whose score trails either directional best by more than
        ``slack`` is pushed below the decision threshold.
        """
        best: dict[tuple, float] = {}
        for pair, score in zip(pairs, scores):
            for anchor, other in (
                (pair.left, pair.right.source),
                (pair.right, pair.left.source),
            ):
                key = (anchor, other)
                if score > best.get(key, -1.0):
                    best[key] = float(score)
        adjusted = scores.copy()
        for i, pair in enumerate(pairs):
            left_best = best[(pair.left, pair.right.source)]
            right_best = best[(pair.right, pair.left.source)]
            if scores[i] < max(left_best, right_best) - slack:
                adjusted[i] = min(scores[i], self.threshold * 0.9)
        return adjusted
