"""The five baseline matchers of the paper's evaluation (Section V-A).

Each module re-implements the matching strategy of the corresponding
published system at the scope needed for flat property schemas (none of
the originals is available offline; DESIGN.md documents the
substitutions):

* :mod:`repro.baselines.aml` -- AgreementMakerLight: lexical matching
  with normalisation and generic background knowledge, high threshold.
* :mod:`repro.baselines.fcamap` -- FCA-Map: formal-concept-analysis
  lattice over name tokens; properties sharing a closed concept match.
* :mod:`repro.baselines.nezhadi` -- Nezhadi et al.: supervised learning
  over classical string-similarity features (no embeddings, no
  instances).
* :mod:`repro.baselines.semprop` -- SemProp: unsupervised syntactic +
  semantic (embedding-coherence) linkage with the paper's thresholds.
* :mod:`repro.baselines.lsh` -- Duan et al.: instance-based matching
  with minhash locality-sensitive hashing, band size 1.
"""

from repro.baselines.aml import AmlMatcher
from repro.baselines.fcamap import FcaMapMatcher
from repro.baselines.lsh import LshMatcher
from repro.baselines.nezhadi import NezhadiMatcher
from repro.baselines.semprop import SemPropMatcher

__all__ = [
    "AmlMatcher",
    "FcaMapMatcher",
    "NezhadiMatcher",
    "SemPropMatcher",
    "LshMatcher",
]
