"""AgreementMakerLight-style lexical matcher.

AML's strength on flat schemas comes from its lexical matchers: label
normalisation, a word-overlap similarity and background-knowledge
synonym expansion, followed by a high-confidence selection step.  Our
re-implementation keeps those three ingredients:

* names are normalised (case, separators, light stemming);
* the similarity of two names is the maximum of (a) exact normalised
  equality, (b) a word-overlap (Jaccard) score and (c) a down-weighted
  Jaro-Winkler similarity of the joined normalised names;
* background knowledge is *generic* morphology only (the stemming step)
  -- AML's WordNet does not know that "mp" means "megapixels", which is
  precisely why the paper reports high precision but low recall for it;
* selection keeps pairs above a high threshold (AML's conservative
  default regime), yielding the high-precision/low-recall profile of
  Table II.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import Matcher
from repro.data.model import Dataset
from repro.data.pairs import LabeledPair
from repro.text.jaro import jaro_winkler_similarity
from repro.text.normalize import token_set


class AmlMatcher(Matcher):
    """Unsupervised lexical matcher in the style of AgreementMakerLight."""

    name = "AML"
    is_supervised = False

    def __init__(self, threshold: float = 0.8) -> None:
        self.threshold = threshold
        self._token_sets: dict[str, frozenset[str]] = {}

    def _tokens(self, name: str) -> frozenset[str]:
        cached = self._token_sets.get(name)
        if cached is None:
            cached = token_set(name)
            self._token_sets[name] = cached
        return cached

    def _similarity(self, left: str, right: str) -> float:
        tokens_left = self._tokens(left)
        tokens_right = self._tokens(right)
        if not tokens_left or not tokens_right:
            return 0.0
        if tokens_left == tokens_right:
            return 1.0
        union = len(tokens_left | tokens_right)
        overlap = len(tokens_left & tokens_right) / union
        joined_left = " ".join(sorted(tokens_left))
        joined_right = " ".join(sorted(tokens_right))
        string_sim = jaro_winkler_similarity(joined_left, joined_right)
        # AML combines matchers by taking the best evidence; the small
        # weight on string similarity keeps near-identical spellings
        # above threshold without promoting loose word overlaps.
        return max(overlap, 0.9 * string_sim)

    def score_pairs(self, dataset: Dataset, pairs: list[LabeledPair]) -> np.ndarray:
        scores = np.empty(len(pairs))
        for i, pair in enumerate(pairs):
            scores[i] = self._similarity(pair.left.name, pair.right.name)
        return scores
