"""FCA-Map-style matcher: formal concept analysis over name tokens.

FCA-Map builds a formal context whose *objects* are ontology elements and
whose *attributes* are their lexical tokens, constructs the concept
lattice, and extracts matches from concepts whose extent contains
elements of both ontologies.  For flat multi-source property schemas we
keep the same mechanism:

* formal context: property -> normalised name-token set;
* for every property, its *object concept* is the closure
  (extent of the intent of its token set);
* two properties from different sources match when they belong to the
  same object concept with identical intent -- i.e. the lattice cannot
  lexically distinguish them.

Token-identical names across naming conventions are found (high
precision); synonyms are invisible to the lattice (low recall), matching
the Table II profile (P ~0.99, R ~0.35).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.core.api import Matcher
from repro.data.model import Dataset, PropertyRef
from repro.data.pairs import LabeledPair
from repro.text.normalize import token_set


class FcaMapMatcher(Matcher):
    """Unsupervised FCA-based matcher."""

    name = "FCA-Map"
    is_supervised = False

    def __init__(self, threshold: float = 0.5) -> None:
        self.threshold = threshold
        self._concept_of: dict[PropertyRef, int] = {}
        self._prepared_for: str | None = None

    def prepare(self, dataset: Dataset) -> None:
        """Build the formal context and assign object concepts."""
        intents: dict[frozenset[str], int] = {}
        self._concept_of = {}
        extents: dict[int, list[PropertyRef]] = defaultdict(list)
        for ref in dataset.properties():
            intent = token_set(ref.name)
            concept = intents.setdefault(intent, len(intents))
            self._concept_of[ref] = concept
            extents[concept].append(ref)
        self._prepared_for = dataset.name

    def score_pairs(self, dataset: Dataset, pairs: list[LabeledPair]) -> np.ndarray:
        if self._prepared_for != dataset.name:
            self.prepare(dataset)
        scores = np.zeros(len(pairs))
        for i, pair in enumerate(pairs):
            left = self._concept_of.get(pair.left)
            right = self._concept_of.get(pair.right)
            if left is not None and left == right:
                scores[i] = 1.0
        return scores

    def concepts(self) -> dict[int, list[PropertyRef]]:
        """The object concepts of the last prepared dataset (diagnostics)."""
        grouped: dict[int, list[PropertyRef]] = defaultdict(list)
        for ref, concept in self._concept_of.items():
            grouped[concept].append(ref)
        return dict(grouped)
