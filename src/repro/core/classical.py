"""Classical-classifier variant of the LEAPME pair classifier.

Section IV-C argues that embedding features "may require nonlinear
combinations to properly exploit their predictive power", motivating the
neural network.  This adapter lets any :mod:`repro.ml` learner consume
the same Table I pair features, so the claim is testable: swap the
network for AdaBoost / a decision tree / logistic regression and compare
(see ``benchmarks/test_bench_ablation.py``).
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError
from repro.ml.base import Classifier
from repro.ml.scaling import StandardScaler


class ClassicalPairClassifier:
    """Adapts a :class:`repro.ml.base.Classifier` to the pair-classifier
    interface expected by :class:`~repro.core.matcher.LeapmeMatcher`
    (``fit(features, labels)`` + ``match_scores(features)``).
    """

    def __init__(self, model: Classifier, scale_features: bool = True) -> None:
        self._model = model
        self._scale_features = scale_features
        self._scaler: StandardScaler | None = None
        self._fitted = False

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "ClassicalPairClassifier":
        """Train the wrapped learner on pair features and binary labels."""
        features = np.asarray(features, dtype=np.float64)
        if self._scale_features:
            self._scaler = StandardScaler()
            features = self._scaler.fit_transform(features)
        self._model.fit(features, np.asarray(labels, dtype=np.int64))
        self._fitted = True
        return self

    def match_scores(self, features: np.ndarray) -> np.ndarray:
        """Positive-class probabilities in [0, 1]."""
        if not self._fitted:
            raise NotFittedError("ClassicalPairClassifier is not fitted")
        if len(features) == 0:
            return np.zeros(0)
        features = np.asarray(features, dtype=np.float64)
        if self._scaler is not None:
            features = self._scaler.transform(features)
        probabilities = self._model.predict_proba(features)
        positive_column = int(np.argmax(self._model.classes_ == 1))
        return probabilities[:, positive_column]
