"""The matcher interface shared by LEAPME and every baseline.

A matcher turns candidate property pairs into similarity scores in
[0, 1]; supervised matchers additionally learn from labelled training
pairs.  The evaluation harness drives any matcher through this interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.data.model import Dataset
from repro.data.pairs import LabeledPair, PairSet
from repro.graph.simgraph import SimilarityGraph


class Matcher(ABC):
    """Base matcher: scores candidate pairs of one dataset.

    Lifecycle: :meth:`prepare` is called once per dataset (feature
    precomputation), :meth:`fit` once per training split (a no-op for
    unsupervised matchers) and :meth:`score_pairs` on any pair list.
    """

    #: Display name used in result tables.
    name: str = "matcher"
    #: Whether :meth:`fit` uses the training pairs.
    is_supervised: bool = False
    #: Score at or above which a pair counts as a match.
    threshold: float = 0.5

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`score_pairs` may be called right away.

        Unsupervised matchers are always ready; supervised ones
        override this to report whether :meth:`fit` has run.  Streaming
        callers (:mod:`repro.ingest`) check it up front so a
        mis-bootstrapped daemon fails before its first batch, not
        inside it.
        """
        return not self.is_supervised

    def prepare(self, dataset: Dataset) -> None:
        """Precompute per-dataset state (features, signatures, ...)."""

    def fit(self, dataset: Dataset, training_pairs: PairSet) -> None:
        """Learn from labelled pairs; default is a no-op (unsupervised)."""

    @abstractmethod
    def score_pairs(self, dataset: Dataset, pairs: list[LabeledPair]) -> np.ndarray:
        """Similarity scores in [0, 1], aligned with ``pairs``."""

    def match(self, dataset: Dataset, pairs: list[LabeledPair]) -> SimilarityGraph:
        """Score pairs and collect them into a similarity graph."""
        scores = self.score_pairs(dataset, pairs)
        graph = SimilarityGraph()
        for pair, score in zip(pairs, scores):
            graph.add(pair.left, pair.right, float(np.clip(score, 0.0, 1.0)))
        return graph
