"""Staged feature pipeline: single source of truth for Table I featurization.

Featurization is decomposed into a registry of :class:`FeatureStage`
nodes forming a small DAG::

    instance_meta ---.
                      >-- property_aggregate --.
    instance_embedding                          >-- pair_diff
    name_embedding --------------------------- '
    name_distance  (pair-level, no property inputs)

* **instance-level** stages featurize one property-instance value
  (Table I rows 1-4);
* **property-level** stages reduce a property's instances to one row
  (rows 5-6), cached per *content fingerprint* so the same property is
  never featurized twice -- across grid cells, matchers, or
  incrementally ingested sources;
* **pair-level** stages emit the final matrix blocks (rows 7-15):
  absolute differences of property rows plus the eight name distances.

:class:`FeatureSchema` derives the full pair-matrix column geometry
from the registry.  It replaces both the former
``pair_features.FeatureLayout`` and ``importance._block_slices`` (which
duplicated the block map and could silently desync); a
:class:`ResolvedSchema` snapshot is persisted inside matcher bundles so
a loaded matcher can verify it scores with the geometry it was trained
on.

Stage outputs are stored as columnar ``float32`` arrays
(:data:`FEATURE_DTYPE`).  The float32 policy: per-row math runs in
float64 (identical to the seed implementation), and the result is cast
to float32 exactly once, when the row enters a column store.  Assembled
pair matrices therefore agree with the legacy float64 path within
float32 resolution, at half the memory.

Stage implementations must stay pure -- no ``repro.evaluation``
imports, no file writes (lint rule REP009) -- so prebuilt columns can be
shipped to worker processes via fork COW without side effects.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass
from itertools import islice
from time import perf_counter

import numpy as np

from repro.core.config import FeatureConfig, FeatureKinds, FeatureScope
from repro.core.instance_features import (
    NUM_META_FEATURES,
    instance_embedding_matrix,
    instance_meta_matrix,
)
from repro.data.model import Dataset, PropertyRef
from repro.data.pairs import LabeledPair
from repro.embeddings.base import WordEmbeddings
from repro.errors import ConfigurationError, DataError
from repro.text.batch import name_distance_rows
from repro.text.similarity import PAIR_DISTANCE_NAMES, name_distance_vector

#: Storage dtype of all stage outputs and assembled pair matrices.
FEATURE_DTYPE = np.float32

#: Number of name string-distance features (Table I rows 8-15).
NUM_NAME_DISTANCES = len(PAIR_DISTANCE_NAMES)


# ---------------------------------------------------------------------------
# Memoised name distances (moved here from pair_features so every layer --
# stores, direct assembly, benchmarks -- shares one cache).
# ---------------------------------------------------------------------------

#: Memoised distance vectors keyed on the (lowercased, sorted) name pair.
#: A plain dict rather than ``lru_cache`` so the batched kernel can probe
#: for misses and insert whole batches of results.  Entries stay float64
#: (the kernel's reference precision); casts happen at assembly.
_DISTANCE_CACHE: dict[tuple[str, str], np.ndarray] = {}

#: Upper bound on memoised pairs.  Rows are ~64 bytes plus key and dict
#: overhead, so the cap bounds the memo near 100 MiB -- small enough for
#: the long-lived follow daemon, large enough that no benchmark grid in
#: the repo ever evicts.  Eviction is insertion-order (FIFO): the memo
#: serves whole featurization passes, not point lookups, so recency
#: tracking per probe would cost more than the occasional recompute.
_DISTANCE_MEMO_CAP = 262_144

#: Optional write-through overflow of the memo, persisted across
#: processes (:class:`repro.text.distance_cache.DistanceCache`); wired
#: by the serve/match CLI paths via :func:`enable_persistent_distances`.
_PERSISTENT_DISTANCES = None


def clear_distance_memo() -> None:
    """Drop every memoised distance row (the in-process memo only)."""
    _DISTANCE_CACHE.clear()


def _evict_distance_overflow() -> None:
    overflow = len(_DISTANCE_CACHE) - _DISTANCE_MEMO_CAP
    if overflow > 0:
        for key in list(islice(iter(_DISTANCE_CACHE), overflow)):
            del _DISTANCE_CACHE[key]


def enable_persistent_distances(path):
    """Attach (and load) a persistent distance cache at ``path``.

    Previously persisted rows are folded into the in-process memo
    immediately; rows computed afterwards are recorded to the cache and
    written out by :func:`flush_persistent_distances`.  Returns the
    :class:`~repro.text.distance_cache.DistanceCache` for inspection.
    """
    global _PERSISTENT_DISTANCES
    from repro.text.distance_cache import DistanceCache

    cache = DistanceCache(path)
    _PERSISTENT_DISTANCES = cache
    _DISTANCE_CACHE.update(cache.items())
    _evict_distance_overflow()
    return cache


def disable_persistent_distances() -> None:
    """Detach the persistent cache (unsaved rows are discarded)."""
    global _PERSISTENT_DISTANCES
    _PERSISTENT_DISTANCES = None


def flush_persistent_distances() -> bool:
    """Atomically save the attached cache; False when detached or clean."""
    if _PERSISTENT_DISTANCES is None:
        return False
    return _PERSISTENT_DISTANCES.save()


def _canonical_name_pair(a: str, b: str) -> tuple[str, str]:
    a = a.lower()
    b = b.lower()
    return (b, a) if a > b else (a, b)


def name_distances(a: str, b: str) -> np.ndarray:
    """Memoised, order-independent name distance vector."""
    key = _canonical_name_pair(a, b)
    cached = _DISTANCE_CACHE.get(key)
    if cached is None:
        cached = _DISTANCE_CACHE[key] = np.array(name_distance_vector(*key))
        cached.setflags(write=False)
        if _PERSISTENT_DISTANCES is not None:
            _PERSISTENT_DISTANCES.record([key], [cached])
        _evict_distance_overflow()
    return cached


def name_distance_block(
    name_pairs: list[tuple[str, str]],
    *,
    dtype: np.dtype | type = np.float64,
    out: np.ndarray | None = None,
    counters: dict | None = None,
) -> np.ndarray:
    """Distance vectors for many name pairs, ``(n_pairs, 8)``.

    Cache-aware: pairs already memoised are served from the cache and
    only the missing unique pairs go through the batched kernel.  Pass
    ``out`` to fill a preallocated block (its dtype wins over ``dtype``).
    ``counters``, when given, has ``"cache_hit"`` incremented by the
    number of rows served from the memo and ``"computed"`` by the rows
    that needed the kernel -- the split the pipeline surfaces as
    ``stage_calls`` so incremental work avoidance is assertable.
    """
    n = len(name_pairs)
    block = out if out is not None else np.empty((n, NUM_NAME_DISTANCES), dtype=dtype)
    missing: list[tuple[str, str]] = []
    seen_missing: dict[tuple[str, str], int] = {}
    gather: list[tuple[int, int]] = []  # (output row, missing index)
    for i, (a, b) in enumerate(name_pairs):
        key = _canonical_name_pair(a, b)
        cached = _DISTANCE_CACHE.get(key)
        if cached is not None:
            block[i] = cached
            continue
        slot = seen_missing.get(key)
        if slot is None:
            slot = seen_missing[key] = len(missing)
            missing.append(key)
        gather.append((i, slot))
    if counters is not None:
        counters["cache_hit"] = counters.get("cache_hit", 0) + (n - len(gather))
        counters["computed"] = counters.get("computed", 0) + len(gather)
    if missing:
        # Keys are already canonical, so the dedup pass inside
        # name_distance_matrix would be a no-op: call the row kernel.
        computed = name_distance_rows(missing)
        computed.setflags(write=False)
        # Cached entries are row views sharing the kernel's base array:
        # no per-row copies, and the read-only base protects them all.
        for key, row in zip(missing, computed):
            _DISTANCE_CACHE[key] = row
        if _PERSISTENT_DISTANCES is not None:
            _PERSISTENT_DISTANCES.record(missing, computed)
        _evict_distance_overflow()
        index = np.array(gather, dtype=np.int64)
        block[index[:, 0]] = computed[index[:, 1]]
    return block


# ---------------------------------------------------------------------------
# Stages
# ---------------------------------------------------------------------------


class StageContext:
    """What a stage may see while computing: data, embeddings, a counter.

    Deliberately narrow -- stages receive no file handles, no evaluation
    machinery -- so they remain pure functions of dataset content
    (enforced by lint rule REP009).
    """

    __slots__ = ("dataset", "embeddings", "record")

    def __init__(self, dataset: Dataset, embeddings: WordEmbeddings, record) -> None:
        self.dataset = dataset
        self.embeddings = embeddings
        #: ``record(stage_name, n)`` -- credit ``n`` computed units to a stage.
        self.record = record


@dataclass(frozen=True)
class BlockSpec:
    """One pair-matrix block a pair-level stage emits.

    ``source`` names the property-level stage whose columns
    ``[source_start:source_stop]`` feed the block (``None`` for blocks
    computed directly from the pair, like name distances).
    """

    key: str
    source: str | None
    source_start: int
    source_stop: int
    column_names: tuple[str, ...]


class FeatureStage:
    """One node of the featurization DAG.

    Subclasses declare ``name``, ``level`` (``instance`` / ``property``
    / ``pair``), upstream ``deps`` and a ``width``; property-level
    stages additionally provide a content-addressed ``cache_key`` and a
    pure ``compute``, pair-level stages declare the matrix blocks they
    emit.  All stage output is stored as :data:`FEATURE_DTYPE`.
    """

    name: str = ""
    level: str = ""
    deps: tuple[str, ...] = ()
    dtype = FEATURE_DTYPE

    def width(self, dimension: int) -> int:
        """Output columns for embedding dimensionality ``dimension``."""
        raise NotImplementedError

    # Property-level interface -------------------------------------------
    def cache_key(self, dataset: Dataset, ref: PropertyRef) -> str:
        raise NotImplementedError

    def compute(self, context: StageContext, ref: PropertyRef) -> np.ndarray:
        raise NotImplementedError

    # Pair-level interface -----------------------------------------------
    def blocks(self, dimension: int) -> tuple[BlockSpec, ...]:
        raise NotImplementedError


#: Registered stages in registration (and matrix-block) order.
STAGES: dict[str, FeatureStage] = {}


def register_stage(stage: FeatureStage) -> FeatureStage:
    """Add a stage to the registry, validating name and dependencies."""
    if not stage.name or not stage.level:
        raise ConfigurationError("feature stages must declare name and level")
    if stage.name in STAGES:
        raise ConfigurationError(f"duplicate feature stage {stage.name!r}")
    for dep in stage.deps:
        if dep not in STAGES:
            raise ConfigurationError(
                f"stage {stage.name!r} depends on unregistered stage {dep!r}"
            )
    STAGES[stage.name] = stage
    return stage


def stages_at(level: str) -> list[FeatureStage]:
    """Registered stages of one level, in registration order."""
    return [stage for stage in STAGES.values() if stage.level == level]


def property_fingerprint(dataset: Dataset, ref: PropertyRef) -> str:
    """Content fingerprint of one property: source, name, value multiset.

    The key under which property-level feature rows are cached; two
    properties with identical source, name and values share a row, no
    matter which dataset object they arrive in.
    """
    hasher = hashlib.sha256()
    hasher.update(ref.source.encode("utf-8"))
    hasher.update(b"\x1f")
    hasher.update(ref.name.encode("utf-8"))
    for value in sorted(dataset.values_of(ref)):
        hasher.update(b"\x1e")
        hasher.update(value.encode("utf-8"))
    return hasher.hexdigest()[:24]


class InstanceMetaStage(FeatureStage):
    """Table I rows 1-3: 29 character/token/numeric meta-features."""

    name = "instance_meta"
    level = "instance"

    def width(self, dimension: int) -> int:
        return NUM_META_FEATURES

    def matrix(self, context: StageContext, values: list[str]) -> np.ndarray:
        context.record(self.name, len(values))
        return instance_meta_matrix(values)


class InstanceEmbeddingStage(FeatureStage):
    """Table I row 4: average word embedding of each instance value."""

    name = "instance_embedding"
    level = "instance"

    def width(self, dimension: int) -> int:
        return dimension

    def matrix(self, context: StageContext, values: list[str]) -> np.ndarray:
        context.record(self.name, len(values))
        return instance_embedding_matrix(values, context.embeddings)


class PropertyAggregateStage(FeatureStage):
    """Table I row 5: mean of instance meta + embedding rows, per property."""

    name = "property_aggregate"
    level = "property"
    deps = ("instance_meta", "instance_embedding")

    def width(self, dimension: int) -> int:
        return NUM_META_FEATURES + dimension

    def cache_key(self, dataset: Dataset, ref: PropertyRef) -> str:
        return property_fingerprint(dataset, ref)

    def compute(self, context: StageContext, ref: PropertyRef) -> np.ndarray:
        dimension = context.embeddings.dimension
        row = np.zeros(NUM_META_FEATURES + dimension)
        values = context.dataset.values_of(ref)
        if values:
            meta = STAGES["instance_meta"].matrix(context, values)
            row[:NUM_META_FEATURES] = meta.mean(axis=0)
            vectors = STAGES["instance_embedding"].matrix(context, values)
            # Sequential accumulation (not ndarray.sum) keeps the float64
            # rounding identical to the seed implementation's value loop.
            total = np.zeros(dimension)
            for vector in vectors:
                total += vector
            row[NUM_META_FEATURES:] = total / len(values)
        return row


class NameEmbeddingStage(FeatureStage):
    """Table I row 6: average word embedding of the property *name*."""

    name = "name_embedding"
    level = "property"

    def width(self, dimension: int) -> int:
        return dimension

    def cache_key(self, dataset: Dataset, ref: PropertyRef) -> str:
        return ref.name

    def compute(self, context: StageContext, ref: PropertyRef) -> np.ndarray:
        return context.embeddings.embed_text(ref.name)


class PairDiffStage(FeatureStage):
    """Table I row 7: absolute differences of property feature rows."""

    name = "pair_diff"
    level = "pair"
    deps = ("property_aggregate", "name_embedding")

    def width(self, dimension: int) -> int:
        return NUM_META_FEATURES + 2 * dimension

    def blocks(self, dimension: int) -> tuple[BlockSpec, ...]:
        return (
            BlockSpec(
                key="instance_meta",
                source="property_aggregate",
                source_start=0,
                source_stop=NUM_META_FEATURES,
                column_names=tuple(
                    f"inst_meta_diff_{i}" for i in range(NUM_META_FEATURES)
                ),
            ),
            BlockSpec(
                key="instance_embedding",
                source="property_aggregate",
                source_start=NUM_META_FEATURES,
                source_stop=NUM_META_FEATURES + dimension,
                column_names=tuple(
                    f"inst_emb_diff_{i}" for i in range(dimension)
                ),
            ),
            BlockSpec(
                key="name_embedding",
                source="name_embedding",
                source_start=0,
                source_stop=dimension,
                column_names=tuple(
                    f"name_emb_diff_{i}" for i in range(dimension)
                ),
            ),
        )


class NameDistanceStage(FeatureStage):
    """Table I rows 8-15: the eight name string distances."""

    name = "name_distance"
    level = "pair"

    def width(self, dimension: int) -> int:
        return NUM_NAME_DISTANCES

    def blocks(self, dimension: int) -> tuple[BlockSpec, ...]:
        return (
            BlockSpec(
                key="name_distances",
                source=None,
                source_start=0,
                source_stop=0,
                column_names=tuple(
                    f"name_dist_{name}" for name in PAIR_DISTANCE_NAMES
                ),
            ),
        )


# Registration order fixes the pair-matrix block order: pair_diff's
# three blocks (instance meta, instance embedding, name embedding), then
# the name distances -- the layout every FeatureConfig slices.
register_stage(InstanceMetaStage())
register_stage(InstanceEmbeddingStage())
register_stage(PropertyAggregateStage())
register_stage(NameEmbeddingStage())
register_stage(PairDiffStage())
register_stage(NameDistanceStage())


# ---------------------------------------------------------------------------
# Schema
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SchemaBlock:
    """One column block of the full pair-feature matrix."""

    key: str
    stage: str
    source: str | None
    source_start: int
    source_stop: int
    start: int
    stop: int
    column_names: tuple[str, ...]

    @property
    def width(self) -> int:
        return self.stop - self.start

    @property
    def columns(self) -> slice:
        """Column range within the full matrix."""
        return slice(self.start, self.stop)

    @property
    def source_columns(self) -> slice:
        """Column range within the source stage's column store."""
        return slice(self.source_start, self.source_stop)


def _block_active(key: str, config: FeatureConfig) -> bool:
    if key == "instance_meta":
        return config.scope.uses_instances and config.kinds.uses_non_embeddings
    if key == "instance_embedding":
        return config.scope.uses_instances and config.kinds.uses_embeddings
    if key == "name_embedding":
        return config.scope.uses_names and config.kinds.uses_embeddings
    if key == "name_distances":
        return config.scope.uses_names and config.kinds.uses_non_embeddings
    raise ConfigurationError(f"unknown feature block {key!r}")


class FeatureSchema:
    """Column-block geometry of the full pair-feature matrix.

    Derived from the stage registry, so column order and block widths
    have exactly one definition; ``feature_block_names``, the feature
    store, permutation importance and persisted bundles all read from
    here.  Every :class:`FeatureConfig` selects whole blocks, so a
    config's matrix is ``full_matrix[:, schema.active_columns(config)]``
    -- a zero-copy view whenever the active blocks are adjacent (all
    grid cells except ``both/non_embedding``, which skips the middle
    embedding blocks).
    """

    def __init__(self, dimension: int) -> None:
        self.dimension = dimension
        blocks: list[SchemaBlock] = []
        offset = 0
        for stage in stages_at("pair"):
            for spec in stage.blocks(dimension):
                stop = offset + len(spec.column_names)
                blocks.append(
                    SchemaBlock(
                        key=spec.key,
                        stage=stage.name,
                        source=spec.source,
                        source_start=spec.source_start,
                        source_stop=spec.source_stop,
                        start=offset,
                        stop=stop,
                        column_names=spec.column_names,
                    )
                )
                offset = stop
        self.blocks: tuple[SchemaBlock, ...] = tuple(blocks)
        self.total_width = offset
        self._by_key = {block.key: block for block in self.blocks}

    def block(self, key: str) -> SchemaBlock:
        try:
            return self._by_key[key]
        except KeyError:
            raise ConfigurationError(f"unknown feature block {key!r}") from None

    def active_blocks(self, config: FeatureConfig) -> tuple[SchemaBlock, ...]:
        """The blocks a config enables, in matrix order."""
        active = tuple(
            block for block in self.blocks if _block_active(block.key, config)
        )
        if not active:
            raise ConfigurationError(
                f"feature config {config.label()} selects no features"
            )
        return active

    def active_columns(self, config: FeatureConfig) -> slice | np.ndarray:
        """Columns of the full matrix a config selects.

        Returns a :class:`slice` (so indexing yields a zero-copy view)
        when the active blocks are adjacent, otherwise an index array.
        """
        active = self.active_blocks(config)
        contiguous = all(
            nxt.start == prev.stop for prev, nxt in zip(active, active[1:])
        )
        if contiguous:
            return slice(active[0].start, active[-1].stop)
        return np.concatenate(
            [np.arange(block.start, block.stop) for block in active]
        )

    def active_slices(self, config: FeatureConfig) -> dict[str, slice]:
        """Per-block column ranges *within the config's own matrix*."""
        return self.resolve(config).slices()

    def column_names(self, config: FeatureConfig) -> list[str]:
        """Human-readable names of the active columns, in order."""
        names: list[str] = []
        for block in self.active_blocks(config):
            names.extend(block.column_names)
        return names

    def width(self, config: FeatureConfig) -> int:
        return sum(block.width for block in self.active_blocks(config))

    def resolve(self, config: FeatureConfig) -> "ResolvedSchema":
        """Freeze the geometry one config sees into a portable snapshot."""
        blocks: list[tuple[str, int, int]] = []
        offset = 0
        for block in self.active_blocks(config):
            blocks.append((block.key, offset, offset + block.width))
            offset += block.width
        return ResolvedSchema(
            scope=config.scope.value,
            kinds=config.kinds.value,
            embedding_dimension=self.dimension,
            dimension=offset,
            blocks=tuple(blocks),
        )

    def describe(self, config: FeatureConfig) -> str:
        """Human-readable block map of one config's matrix."""
        resolved = self.resolve(config)
        lines = [f"{config.label()}: {resolved.dimension} columns"]
        for key, start, stop in resolved.blocks:
            block = self.block(key)
            via = block.source if block.source is not None else block.stage
            lines.append(f"  [{start:4d}:{stop:4d}] {key:<20} <- {via}")
        return "\n".join(lines)


@dataclass(frozen=True)
class ResolvedSchema:
    """The geometry one config's matrix actually has -- persistable.

    Saved inside matcher bundles (``config.json``) so a loaded matcher
    can verify that the pipeline it will score with produces the column
    layout the classifier was trained on.
    """

    scope: str
    kinds: str
    embedding_dimension: int
    dimension: int
    blocks: tuple[tuple[str, int, int], ...]

    @property
    def config(self) -> FeatureConfig:
        return FeatureConfig(
            scope=FeatureScope(self.scope), kinds=FeatureKinds(self.kinds)
        )

    def slices(self) -> dict[str, slice]:
        """Per-block column ranges within the config's matrix."""
        return {key: slice(start, stop) for key, start, stop in self.blocks}

    def to_dict(self) -> dict:
        return {
            "scope": self.scope,
            "kinds": self.kinds,
            "embedding_dimension": self.embedding_dimension,
            "dimension": self.dimension,
            "blocks": [[key, start, stop] for key, start, stop in self.blocks],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ResolvedSchema":
        try:
            return cls(
                scope=str(payload["scope"]),
                kinds=str(payload["kinds"]),
                embedding_dimension=int(payload["embedding_dimension"]),
                dimension=int(payload["dimension"]),
                blocks=tuple(
                    (str(key), int(start), int(stop))
                    for key, start, stop in payload["blocks"]
                ),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise DataError(f"malformed feature schema: {error}") from None


def describe_stages(dimension: int) -> str:
    """Human-readable stage graph for embedding dimensionality ``dimension``."""
    lines = ["stage graph (name  level  width  <- deps):"]
    for stage in STAGES.values():
        deps = ", ".join(stage.deps) if stage.deps else "-"
        lines.append(
            f"  {stage.name:<20} {stage.level:<9} "
            f"{stage.width(dimension):>5}  <- {deps}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Pipeline
# ---------------------------------------------------------------------------


def split_pairs(
    pairs: list[LabeledPair] | list[tuple[PropertyRef, PropertyRef]],
) -> tuple[list[PropertyRef], list[PropertyRef]]:
    """Left and right refs of a pair list (labeled or plain tuples)."""
    lefts: list[PropertyRef] = []
    rights: list[PropertyRef] = []
    for pair in pairs:
        if isinstance(pair, LabeledPair):
            lefts.append(pair.left)
            rights.append(pair.right)
        else:
            left, right = pair
            lefts.append(left)
            rights.append(right)
    return lefts, rights


class FeaturePipeline:
    """Executes the stage DAG for one embedding space.

    Property-level rows are cached per content fingerprint (float32,
    read-only), independently of any pair enumeration -- featurizing a
    dataset that shares properties with an earlier one only computes the
    genuinely new rows, which is what makes
    :meth:`repro.core.feature_cache.PairFeatureStore.add_source` cheap.

    ``stage_calls`` counts computed units per stage (instance values
    featurized, property rows computed, pair rows assembled);
    ``stage_seconds`` accumulates wall-clock per stage.  Both exist so
    incremental behaviour is assertable and benchmarkable rather than
    assumed.
    """

    def __init__(self, embeddings: WordEmbeddings) -> None:
        self.embeddings = embeddings
        self.schema = FeatureSchema(embeddings.dimension)
        self.stage_calls: Counter = Counter()
        self.stage_seconds: dict[str, float] = {}
        #: Scratch hit/miss split filled by ``name_distance_block`` and
        #: folded into ``stage_calls`` as ``name_distance.computed`` /
        #: ``name_distance.cache_hit``.
        self._distance_counters: dict[str, int] = {}
        self._rows: dict[str, dict[str, np.ndarray]] = {
            stage.name: {} for stage in stages_at("property")
        }

    def _record_calls(self, stage_name: str, n: int) -> None:
        self.stage_calls[stage_name] += n

    def _record_seconds(self, stage_name: str, seconds: float) -> None:
        self.stage_seconds[stage_name] = (
            self.stage_seconds.get(stage_name, 0.0) + seconds
        )

    def property_columns(self, dataset: Dataset) -> dict[str, np.ndarray]:
        """Columnar float32 stage outputs for all properties of a dataset.

        Returns ``{stage_name: (n_properties, stage_width) float32}``
        with rows in ``dataset.properties()`` order; rows already cached
        (same property content seen before) are served, only new rows
        compute.
        """
        refs = dataset.properties()
        context = StageContext(dataset, self.embeddings, self._record_calls)
        columns: dict[str, np.ndarray] = {}
        for stage in stages_at("property"):
            started = perf_counter()
            out = np.empty(
                (len(refs), stage.width(self.schema.dimension)),
                dtype=FEATURE_DTYPE,
            )
            cache = self._rows[stage.name]
            for i, ref in enumerate(refs):
                key = stage.cache_key(dataset, ref)
                row = cache.get(key)
                if row is None:
                    self.stage_calls[stage.name] += 1
                    row = np.asarray(
                        stage.compute(context, ref), dtype=FEATURE_DTYPE
                    )
                    row.setflags(write=False)
                    cache[key] = row
                out[i] = row
            out.setflags(write=False)
            columns[stage.name] = out
            self._record_seconds(stage.name, perf_counter() - started)
        return columns

    def pair_matrix(self, table, pairs, config: FeatureConfig) -> np.ndarray:
        """Assemble a config's pair matrix from a table's stage columns.

        ``table`` is any object exposing ``rows_of(refs)`` and
        ``stage_columns(stage_name)`` (in practice a
        :class:`~repro.core.property_features.PropertyFeatureTable`).
        The result is float32 with ``schema.width(config)`` columns.
        """
        active = self.schema.active_blocks(config)
        lefts, rights = split_pairs(pairs)
        n = len(lefts)
        matrix = np.empty((n, self.schema.width(config)), dtype=FEATURE_DTYPE)
        if n == 0:
            return matrix
        left_rows: np.ndarray | None = None
        right_rows: np.ndarray | None = None
        counted: set[str] = set()
        offset = 0
        for block in active:
            target = matrix[:, offset : offset + block.width]
            offset += block.width
            started = perf_counter()
            if block.source is not None:
                if left_rows is None:
                    left_rows = table.rows_of(lefts)
                    right_rows = table.rows_of(rights)
                source = table.stage_columns(block.source)[:, block.source_columns]
                np.abs(source[left_rows] - source[right_rows], out=target)
            else:  # name distances
                name_distance_block(
                    [
                        (left.name, right.name)
                        for left, right in zip(lefts, rights)
                    ],
                    out=target,
                    counters=self._distance_counters,
                )
            self._record_seconds(block.stage, perf_counter() - started)
            if block.stage not in counted:
                counted.add(block.stage)
                if block.source is not None:
                    self.stage_calls[block.stage] += n
                else:
                    # The name-distance stage splits its row count by
                    # memo state so incremental work avoidance (warm
                    # add_source, persistent cache) is assertable.
                    for kind, count in self._distance_counters.items():
                        self.stage_calls[f"{block.stage}.{kind}"] += count
                    self._distance_counters.clear()
        return matrix
