"""LEAPME: LEArning-based Property Matching with Embeddings.

The paper's primary contribution (Section IV).  The pieces map onto
Algorithm 1 as follows:

* :mod:`repro.core.instance_features` -- ``iFeatures`` (Table I rows 1-4):
  character-type, token-type and numeric meta-features plus the average
  word embedding of each instance value.
* :mod:`repro.core.property_features` -- ``pFeatures`` (rows 5-6): the
  per-property average of instance features and the name embedding,
  assembled into a :class:`PropertyFeatureTable`.
* :mod:`repro.core.pipeline` -- the staged featurization DAG: a
  registry of :class:`FeatureStage` nodes, the :class:`FeatureSchema`
  column geometry and the columnar float32 :class:`FeaturePipeline`
  with fingerprint-keyed per-property row caching.
* :mod:`repro.core.pair_features` -- ``ppFeatures`` (rows 7-15): the
  difference of property feature vectors plus eight name string
  distances, filtered by the active :class:`FeatureConfig`.
* :mod:`repro.core.classifier` -- ``trainClassifier``: the dense network
  (128 -> 64 -> 2 softmax) with the paper's phased learning-rate schedule.
* :mod:`repro.core.matcher` -- the end-to-end :class:`LeapmeMatcher`
  producing a similarity graph over unlabeled pairs.

The nine evaluation configurations of Section V-A correspond to
``FeatureConfig(scope, kinds)`` with scope in {instances, names, both}
and kinds in {embedding, non_embedding, both}.
"""

from repro.core.api import Matcher
from repro.core.classifier import (
    FittedState,
    LeapmeClassifier,
    ResilientClassifier,
)
from repro.core.config import (
    FeatureConfig,
    FeatureKinds,
    FeatureScope,
    LeapmeConfig,
)
from repro.core.importance import (
    BlockImportance,
    permutation_importance,
    render_importance,
)
from repro.core.instance_features import (
    NUM_META_FEATURES,
    instance_meta_features,
    instance_meta_matrix,
)
from repro.core.feature_cache import PairFeatureStore, PairUniverse
from repro.core.matcher import LeapmeMatcher
from repro.core.pair_features import (
    feature_block_names,
    pair_feature_matrix,
)
from repro.core.persistence import load_matcher, save_matcher
from repro.core.pipeline import (
    FEATURE_DTYPE,
    FeaturePipeline,
    FeatureSchema,
    FeatureStage,
    ResolvedSchema,
    SchemaBlock,
)
from repro.core.property_features import PropertyFeatureTable

__all__ = [
    "Matcher",
    "FeatureScope",
    "FeatureKinds",
    "FeatureConfig",
    "LeapmeConfig",
    "NUM_META_FEATURES",
    "instance_meta_features",
    "instance_meta_matrix",
    "PropertyFeatureTable",
    "FEATURE_DTYPE",
    "FeaturePipeline",
    "FeatureSchema",
    "FeatureStage",
    "ResolvedSchema",
    "SchemaBlock",
    "PairFeatureStore",
    "PairUniverse",
    "feature_block_names",
    "pair_feature_matrix",
    "LeapmeClassifier",
    "ResilientClassifier",
    "FittedState",
    "LeapmeMatcher",
    "BlockImportance",
    "permutation_importance",
    "render_importance",
    "save_matcher",
    "load_matcher",
]
