"""Permutation feature importance for a trained LEAPME matcher.

Section I motivates supervised learning because it "learn[s] what
features are more important and how they must be combined".  This module
makes that learned weighting inspectable: permutation importance shuffles
one feature *block* at a time across the evaluation pairs and measures
how much F1 drops -- a model-agnostic answer to "which of Table I's
feature families is the classifier actually using?".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.matcher import LeapmeMatcher
from repro.core.pair_features import pair_feature_matrix
from repro.data.model import Dataset
from repro.data.pairs import PairSet
from repro.metrics import evaluate_scores


@dataclass(frozen=True)
class BlockImportance:
    """F1 impact of destroying one feature block."""

    block: str
    baseline_f1: float
    permuted_f1: float

    @property
    def importance(self) -> float:
        """F1 drop caused by permuting the block (higher = more relied on)."""
        return self.baseline_f1 - self.permuted_f1


def permutation_importance(
    matcher: LeapmeMatcher,
    dataset: Dataset,
    pairs: PairSet,
    repeats: int = 3,
    rng: np.random.Generator | None = None,
) -> list[BlockImportance]:
    """Per-block permutation importance of a fitted matcher.

    For every active feature block, the block's columns are shuffled
    across the evaluation pairs (breaking their relationship to the
    labels while preserving their marginal distribution) and the matcher
    is re-scored.  The mean F1 drop over ``repeats`` shuffles is the
    block's importance.  Results are sorted most-important first.
    """
    classifier = matcher.classifier  # raises NotFittedError when unfitted
    rng = rng if rng is not None else np.random.default_rng(0)
    table = matcher._ensure_table(dataset)
    features = pair_feature_matrix(table, pairs.pairs, matcher.feature_config)
    labels = pairs.labels()
    baseline = evaluate_scores(
        classifier.match_scores(features), labels, matcher.threshold
    ).f1
    results = []
    # The matcher's FeatureSchema is the single source of truth for block
    # geometry -- the same object that assembled ``features`` above, so
    # the slices cannot desync from the matrix.
    slices = matcher.schema.resolve(matcher.feature_config).slices()
    for block, columns in slices.items():
        drops = []
        for _ in range(repeats):
            permuted = features.copy()
            permutation = rng.permutation(len(permuted))
            permuted[:, columns] = permuted[permutation][:, columns]
            quality = evaluate_scores(
                classifier.match_scores(permuted), labels, matcher.threshold
            )
            drops.append(quality.f1)
        results.append(
            BlockImportance(
                block=block,
                baseline_f1=baseline,
                permuted_f1=float(np.mean(drops)),
            )
        )
    results.sort(key=lambda item: -item.importance)
    return results


def render_importance(importances: list[BlockImportance], width: int = 40) -> str:
    """ASCII bar chart of block importances."""
    if not importances:
        return "(no feature blocks)"
    top = max(importance.importance for importance in importances)
    scale = width / top if top > 0 else 0.0
    lines = [f"baseline F1 = {importances[0].baseline_f1:.3f}"]
    for item in importances:
        bar = "#" * max(0, int(round(item.importance * scale)))
        lines.append(
            f"  {item.block:<20} dF1={item.importance:+.3f} {bar}"
        )
    return "\n".join(lines)
