"""The LEAPME classifier: a dense network with the paper's hyper-parameters.

"it consists of two fully connected hidden layers of sizes 128 and 64.
We use a batch size of 32 and perform 10 epochs with learning rate 1e-3,
5 with 1e-4, and 5 with 1e-5. ... The final layer has two neurons from
which the final score is obtained for the two possible outcomes
(positive/negative).  This allows the use of the positive output as a
similarity score."
"""

from __future__ import annotations

import numpy as np

from repro.core.config import LeapmeConfig
from repro.errors import NotFittedError
from repro.ml.scaling import StandardScaler
from repro.nn.activations import ReLU
from repro.nn.layers import Dense
from repro.nn.network import Sequential, TrainingHistory
from repro.nn.optimizers import Adam


class LeapmeClassifier:
    """Binary pair classifier producing a match probability per pair."""

    def __init__(self, config: LeapmeConfig | None = None) -> None:
        self.config = config if config is not None else LeapmeConfig()
        self._network: Sequential | None = None
        self._scaler: StandardScaler | None = None
        self.history: TrainingHistory | None = None

    def _build_network(self, n_features: int) -> Sequential:
        rng = np.random.default_rng(self.config.seed)
        layers = []
        in_size = n_features
        for hidden in self.config.hidden_sizes:
            layers.append(Dense(in_size, hidden, rng=rng))
            layers.append(ReLU())
            in_size = hidden
        layers.append(Dense(in_size, 2, rng=rng))
        return Sequential(layers)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LeapmeClassifier":
        """Train on pair features and binary labels (1 = match)."""
        features = np.asarray(features, dtype=np.float64)
        if self.config.scale_features:
            self._scaler = StandardScaler()
            features = self._scaler.fit_transform(features)
        else:
            self._scaler = None
        self._network = self._build_network(features.shape[1])
        self.history = self._network.fit(
            features,
            np.asarray(labels, dtype=np.int64),
            schedule=self.config.schedule,
            batch_size=self.config.batch_size,
            optimizer=Adam(),
            rng=np.random.default_rng(self.config.seed + 1),
        )
        return self

    def _transform(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if self._scaler is not None:
            features = self._scaler.transform(features)
        return features

    def match_scores(self, features: np.ndarray) -> np.ndarray:
        """Positive-class probabilities -- the paper's similarity scores."""
        if self._network is None:
            raise NotFittedError("LeapmeClassifier is not fitted")
        if len(features) == 0:
            return np.zeros(0)
        return self._network.predict_proba(self._transform(features))[:, 1]

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard match decisions at the configured threshold."""
        return (self.match_scores(features) >= self.config.decision_threshold).astype(
            np.int64
        )
