"""The LEAPME classifier: a dense network with the paper's hyper-parameters.

"it consists of two fully connected hidden layers of sizes 128 and 64.
We use a batch size of 32 and perform 10 epochs with learning rate 1e-3,
5 with 1e-4, and 5 with 1e-5. ... The final layer has two neurons from
which the final score is obtained for the two possible outcomes
(positive/negative).  This allows the use of the positive output as a
similarity score."

Besides the faithful :class:`LeapmeClassifier`, this module provides
:class:`ResilientClassifier`, a degradation ladder for fault-tolerant
experiment grids: diverged training is retried at a reduced learning
rate and finally falls back to a classical logistic-regression
classifier, so a repetition still produces a score instead of aborting.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.classical import ClassicalPairClassifier
from repro.core.config import LeapmeConfig
from repro.errors import DataError, NotFittedError, TrainingDivergedError
from repro.ml.logistic import LogisticRegression
from repro.ml.scaling import StandardScaler
from repro.nn.activations import ReLU
from repro.nn.guards import assert_finite
from repro.nn.layers import Dense
from repro.nn.network import Sequential, TrainingHistory
from repro.nn.optimizers import Adam

#: Degradation labels recorded by :class:`ResilientClassifier`.
DEGRADATION_REDUCED_LR = "reduced-lr"
DEGRADATION_CLASSICAL_FALLBACK = "classical-fallback"


@dataclass(frozen=True)
class FittedState:
    """The trained artifacts of a :class:`LeapmeClassifier`.

    The public contract for persistence and inspection: callers
    (``repro.core.persistence`` among them) never reach into private
    attributes to serialise a classifier.
    """

    network: Sequential
    scaler: StandardScaler | None


class LeapmeClassifier:
    """Binary pair classifier producing a match probability per pair."""

    def __init__(self, config: LeapmeConfig | None = None) -> None:
        self.config = config if config is not None else LeapmeConfig()
        self._network: Sequential | None = None
        self._scaler: StandardScaler | None = None
        self.history: TrainingHistory | None = None

    def _build_network(self, n_features: int) -> Sequential:
        rng = np.random.default_rng(self.config.seed)
        layers = []
        in_size = n_features
        for hidden in self.config.hidden_sizes:
            layers.append(Dense(in_size, hidden, rng=rng))
            layers.append(ReLU())
            in_size = hidden
        layers.append(Dense(in_size, 2, rng=rng))
        return Sequential(layers)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LeapmeClassifier":
        """Train on pair features and binary labels (1 = match).

        Raises :class:`~repro.errors.NumericError` on NaN/Inf features
        and :class:`~repro.errors.TrainingDivergedError` when the loss
        becomes non-finite, instead of silently producing NaN scores.
        """
        features = np.asarray(features, dtype=np.float64)
        assert_finite(features, "pair features")
        if self.config.scale_features:
            self._scaler = StandardScaler()
            features = self._scaler.fit_transform(features)
        else:
            self._scaler = None
        self._network = self._build_network(features.shape[1])
        try:
            self.history = self._network.fit(
                features,
                np.asarray(labels, dtype=np.int64),
                schedule=self.config.schedule,
                batch_size=self.config.batch_size,
                optimizer=Adam(),
                rng=np.random.default_rng(self.config.seed + 1),
            )
        except TrainingDivergedError:
            # A half-trained (diverged) network must not look fitted.
            self._network = None
            raise
        return self

    def fitted_state(self) -> FittedState:
        """The trained network and scaler (raises before :meth:`fit`)."""
        if self._network is None:
            raise NotFittedError("LeapmeClassifier is not fitted")
        return FittedState(network=self._network, scaler=self._scaler)

    def restore_fitted_state(self, state: FittedState) -> "LeapmeClassifier":
        """Install previously trained artifacts (the load-time inverse of
        :meth:`fitted_state`); returns ``self`` for chaining."""
        self._network = state.network
        self._scaler = state.scaler
        return self

    def _transform(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if self._scaler is not None:
            features = self._scaler.transform(features)
        return features

    def match_scores(self, features: np.ndarray) -> np.ndarray:
        """Positive-class probabilities -- the paper's similarity scores."""
        if self._network is None:
            raise NotFittedError("LeapmeClassifier is not fitted")
        if len(features) == 0:
            return np.zeros(0)
        return self._network.predict_proba(self._transform(features))[:, 1]

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard match decisions at the configured threshold."""
        return (self.match_scores(features) >= self.config.decision_threshold).astype(
            np.int64
        )


def _default_fallback(config: LeapmeConfig) -> ClassicalPairClassifier:
    """The ladder's last rung: logistic regression over the same features."""
    return ClassicalPairClassifier(
        LogisticRegression(), scale_features=config.scale_features
    )


class ResilientClassifier:
    """A pair classifier with graceful degradation under divergence.

    Training proceeds down a ladder until one rung succeeds:

    1. the primary network with the configured schedule;
    2. on :class:`~repro.errors.TrainingDivergedError`, the primary again
       with every learning rate scaled by ``lr_backoff``;
    3. on a second divergence, a classical logistic-regression classifier
       over the same pair features.

    ``degradation`` records which rung produced the model (``None`` for
    the primary, :data:`DEGRADATION_REDUCED_LR` or
    :data:`DEGRADATION_CLASSICAL_FALLBACK` otherwise) so runners and
    journals can surface that a score came from a degraded model.

    Parameters
    ----------
    config:
        Hyper-parameters for the primary network (and the scaling flag
        shared with the fallback).
    primary_factory:
        ``config -> classifier``; defaults to :class:`LeapmeClassifier`.
        The fault-injection harness substitutes deterministic diverging
        primaries here.
    lr_backoff:
        Learning-rate multiplier for rung 2 (default 0.1).
    fallback_factory:
        ``config -> classifier`` for rung 3; defaults to logistic
        regression via :class:`ClassicalPairClassifier`.
    """

    def __init__(
        self,
        config: LeapmeConfig | None = None,
        primary_factory=None,
        lr_backoff: float = 0.1,
        fallback_factory=None,
    ) -> None:
        self.config = config if config is not None else LeapmeConfig()
        self._primary_factory = (
            primary_factory if primary_factory is not None else LeapmeClassifier
        )
        self._fallback_factory = (
            fallback_factory if fallback_factory is not None else _default_fallback
        )
        self.lr_backoff = lr_backoff
        self._delegate = None
        self.degradation: str | None = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "ResilientClassifier":
        """Train down the degradation ladder; always ends with a model
        (or re-raises the fallback's own failure)."""
        self._delegate = None
        self.degradation = None
        try:
            self._delegate = self._primary_factory(self.config)
            self._delegate.fit(features, labels)
            return self
        except TrainingDivergedError:
            pass
        try:
            reduced = replace(
                self.config, schedule=self.config.schedule.scaled(self.lr_backoff)
            )
            self._delegate = self._primary_factory(reduced)
            self._delegate.fit(features, labels)
            self.degradation = DEGRADATION_REDUCED_LR
            return self
        except TrainingDivergedError:
            pass
        self._delegate = self._fallback_factory(self.config)
        self._delegate.fit(features, labels)
        self.degradation = DEGRADATION_CLASSICAL_FALLBACK
        return self

    def fitted_state(self) -> FittedState:
        """The delegate's trained artifacts, when it has a network.

        Raises :class:`~repro.errors.DataError` after a classical
        fallback -- there is no network to serialise then.
        """
        if self._delegate is None:
            raise NotFittedError("ResilientClassifier is not fitted")
        accessor = getattr(self._delegate, "fitted_state", None)
        if accessor is None:
            raise DataError(
                "classifier degraded to a classical fallback; "
                "it holds no serialisable network state"
            )
        return accessor()

    def match_scores(self, features: np.ndarray) -> np.ndarray:
        """Positive-class probabilities from whichever rung trained."""
        if self._delegate is None:
            raise NotFittedError("ResilientClassifier is not fitted")
        return self._delegate.match_scores(features)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard match decisions at the configured threshold."""
        return (
            self.match_scores(features) >= self.config.decision_threshold
        ).astype(np.int64)
