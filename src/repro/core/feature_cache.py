"""Shared pair-feature store: the full Table I matrix, computed once.

The evaluation grid of Section V re-scores the *same* candidate pairs
under nine feature configurations, two training fractions and many
repetitions.  The seed implementation recomputed, per grid cell:

* the cross-source pair enumeration (``build_pairs``, quadratic in the
  property count), once per repetition per cell;
* the pair feature matrix, even though every config's matrix is a
  column subset of one full matrix (see
  :class:`repro.core.pipeline.FeatureSchema`).

This module hoists both.  :class:`PairUniverse` enumerates all
cross-source pairs of a dataset exactly once and serves every
``(sources, within)`` subset by filtering that enumeration -- the
result is element-identical to ``build_pairs``.  :class:`PairFeatureStore`
is a thin gather over the staged pipeline's outputs: the full-width
float32 matrix over the universe is assembled once from the cached
per-property stage columns, then any (pair set, config) request is a
row gather plus a column slice; the gathered full-width submatrix is
cached per pair set, so the nine configs of a grid cell share one
gather and eight of them are zero-copy column views of it.

Stores are keyed by the dataset's content fingerprint: a store never
answers for a dataset it was not built from.  :meth:`PairFeatureStore.add_source`
is the incremental-ingestion path: merging a new source featurizes only
the new properties (the pipeline's fingerprint-keyed row cache serves
every old one) and only the new cross-source pairs, while old pair rows
are copied from the existing matrix.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from time import perf_counter

import numpy as np

from repro.core.config import FeatureConfig
from repro.core.pipeline import FEATURE_DTYPE
from repro.core.property_features import PropertyFeatureTable
from repro.data.model import Dataset, PropertyRef
from repro.data.pairs import LabeledPair, PairSet, sample_training_pairs
from repro.errors import ConfigurationError


class PairUniverse:
    """All cross-source pairs of a dataset, enumerated once.

    ``subset`` reproduces :func:`repro.data.pairs.build_pairs` exactly
    (same pair objects, same order) by filtering the single enumeration
    instead of re-walking the quadratic property grid per grid cell.
    """

    def __init__(self, dataset: Dataset) -> None:
        self.dataset = dataset
        self.dataset_fingerprint = dataset.fingerprint()
        self._all_sources = set(dataset.sources())
        properties = dataset.properties()
        pairs: list[LabeledPair] = []
        for i, left in enumerate(properties):
            for right in properties[i + 1 :]:
                if left.source == right.source:
                    continue
                pairs.append(
                    LabeledPair(left, right, dataset.is_match(left, right))
                )
        self.pairs: tuple[LabeledPair, ...] = tuple(pairs)
        self._row_of: dict[frozenset[PropertyRef], int] = {
            pair.key: row for row, pair in enumerate(self.pairs)
        }
        self._subset_cache: dict[tuple[frozenset[str], bool], PairSet] = {}
        # rows_of is a per-pair Python loop; the same (memoised) pair
        # list recurs for every config of a grid cell, so cache the row
        # arrays by list identity.  Entries hold a strong reference to
        # the list, which keeps the id stable while cached.  Sizing: a
        # grid touches repetitions+1 entries per train fraction, and the
        # entries are small (index arrays / pair lists), so the caps sit
        # well above any realistic repetition count.
        self._rows_cache: OrderedDict[int, tuple[object, np.ndarray]] = OrderedDict()
        self._rows_cache_size = 256
        self._sample_cache: OrderedDict[tuple, tuple[object, PairSet]] = OrderedDict()
        self._sample_cache_size = 256
        # The memo dicts above are mutated on lookup (LRU move_to_end /
        # eviction), so concurrent read-only *requests* -- the serve
        # layer's thread-per-connection handlers all gathering from one
        # warm store -- must serialise cache access.  The lock guards
        # only the bookkeeping; the enumeration itself is immutable.
        self._cache_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.pairs)

    def subset(
        self, sources: list[str] | None = None, *, within: bool = True
    ) -> PairSet:
        """The ``build_pairs(dataset, sources, within=...)`` pair set."""
        if sources is None:
            selected = self._all_sources
        else:
            unknown = set(sources) - self._all_sources
            if unknown:
                raise ConfigurationError(f"unknown sources: {sorted(unknown)}")
            selected = set(sources)
        # The same split recurs across the nine configs of a grid cell;
        # memoise so the filter runs once per (sources, within).
        cache_key = (frozenset(selected), within)
        with self._cache_lock:
            cached = self._subset_cache.get(cache_key)
            if cached is not None:
                return cached
        kept = [
            pair
            for pair in self.pairs
            if (pair.left.source in selected and pair.right.source in selected)
            == within
        ]
        with self._cache_lock:
            result = self._subset_cache.setdefault(cache_key, PairSet(kept))
        return result

    def training_sample(
        self,
        candidates: PairSet,
        negative_ratio: float,
        rng_seed: tuple[int, ...],
    ) -> PairSet:
        """Memoised :func:`sample_training_pairs` over a memoised subset.

        Every config of a grid cell draws the same training sample (the
        rng is reseeded from ``rng_seed`` per draw), so the sample --
        like the subset it comes from -- is computed once and the shared
        ``PairSet`` object lets the row/gather caches downstream hit.
        The draw consumes a fresh generator exactly as the direct path
        does, so the sampled content is bit-identical.
        """
        key = (id(candidates), float(negative_ratio), tuple(rng_seed))
        with self._cache_lock:
            cached = self._sample_cache.get(key)
            if cached is not None and cached[0] is candidates:
                self._sample_cache.move_to_end(key)
                return cached[1]
        sample = sample_training_pairs(
            candidates, negative_ratio, np.random.default_rng(list(rng_seed))
        )
        with self._cache_lock:
            self._sample_cache[key] = (candidates, sample)
            if len(self._sample_cache) > self._sample_cache_size:
                self._sample_cache.popitem(last=False)
        return sample

    def row_of(self, pair: LabeledPair | tuple[PropertyRef, PropertyRef]) -> int:
        """Universe row of an (unordered) pair."""
        key = (
            pair.key
            if isinstance(pair, LabeledPair)
            else frozenset(pair)
        )
        try:
            return self._row_of[key]
        except KeyError:
            raise ConfigurationError(
                "pair is not part of this dataset's cross-source universe"
            ) from None

    def rows_of(
        self, pairs: list[LabeledPair] | list[tuple[PropertyRef, PropertyRef]]
    ) -> np.ndarray:
        """Universe rows of many pairs, in order."""
        with self._cache_lock:
            cached = self._rows_cache.get(id(pairs))
            if cached is not None and cached[0] is pairs:
                self._rows_cache.move_to_end(id(pairs))
                return cached[1]
        rows = np.array([self.row_of(pair) for pair in pairs], dtype=np.intp)
        rows.setflags(write=False)
        with self._cache_lock:
            self._rows_cache[id(pairs)] = (pairs, rows)
            if len(self._rows_cache) > self._rows_cache_size:
                self._rows_cache.popitem(last=False)
        return rows


class PairFeatureStore:
    """Full-width pair features over a :class:`PairUniverse`, shared.

    The matrix is assembled once at construction (a thin gather over
    the pipeline's columnar stage outputs); every
    ``features(pairs, config)`` call afterwards is a cached row gather
    plus a column slice.  The store is read-only: the full matrix and
    the cached gathers have their write flags cleared, so the views
    handed to different grid cells cannot corrupt each other.
    """

    def __init__(
        self,
        table: PropertyFeatureTable,
        universe: PairUniverse,
        *,
        gather_cache_size: int = 64,
        gather_cache_bytes: int = 1 << 30,
        matrix: np.ndarray | None = None,
    ) -> None:
        if table.dataset_fingerprint != universe.dataset_fingerprint:
            raise ConfigurationError(
                "feature table and pair universe come from different datasets"
            )
        self.table = table
        self.universe = universe
        self.dataset_fingerprint = universe.dataset_fingerprint
        self.schema = table.pipeline.schema
        self.timings: dict[str, float] = {}
        # A prebuilt matrix is the delta-construction path
        # (with_source): the caller assembled it from copied old rows
        # plus freshly featurized new ones and it is already
        # bit-identical to what _assemble would produce.
        if matrix is None:
            matrix = self._assemble(table, list(universe.pairs))
        self.matrix = matrix
        # Gathers are the memory-heavy cache (full-width row submatrices).
        # A grid touches repetitions+1 of them per train fraction, so the
        # count cap sits above realistic repetition counts; the byte
        # budget bounds worst-case memory at large dataset scales.
        self._gather_cache: OrderedDict[bytes, np.ndarray] = OrderedDict()
        self._gather_cache_size = gather_cache_size
        self._gather_cache_bytes = gather_cache_bytes
        self._gather_bytes = 0
        # Float64 shadow for the score phase (see scoring_features).
        self._matrix64: np.ndarray | None = None
        self._gather64_cache: OrderedDict[bytes, np.ndarray] = OrderedDict()
        self._gather64_cache_size = 8
        # Serialises gather-cache bookkeeping so concurrent read-only
        # requests (serve-layer handler threads) can share one store.
        self._cache_lock = threading.Lock()

    def _assemble(
        self, table: PropertyFeatureTable, pairs: list[LabeledPair]
    ) -> np.ndarray:
        """Full-width float32 rows for ``pairs``, via the pipeline."""
        pipeline = table.pipeline
        started = perf_counter()
        distance_before = pipeline.stage_seconds.get("name_distance", 0.0)
        matrix = pipeline.pair_matrix(table, pairs, FeatureConfig())
        matrix.setflags(write=False)
        self.timings["name_distances"] = self.timings.get(
            "name_distances", 0.0
        ) + (pipeline.stage_seconds.get("name_distance", 0.0) - distance_before)
        self.timings["build"] = self.timings.get("build", 0.0) + (
            perf_counter() - started
        )
        return matrix

    @property
    def pipeline(self):
        """The :class:`~repro.core.pipeline.FeaturePipeline` rows come from."""
        return self.table.pipeline

    @classmethod
    def build(
        cls, dataset: Dataset, embeddings, universe: PairUniverse | None = None
    ) -> "PairFeatureStore":
        """Construct table, universe and store in one step."""
        if universe is None:
            universe = PairUniverse(dataset)
        table = PropertyFeatureTable(dataset, embeddings)
        return cls(table, universe)

    def serves(self, dataset: Dataset) -> bool:
        """Whether this store was built from ``dataset``'s content."""
        return self.dataset_fingerprint == dataset.fingerprint()

    def _delta_parts(
        self, addition: Dataset
    ) -> tuple[PropertyFeatureTable, PairUniverse, np.ndarray, PairSet]:
        """The PR 5 incremental merge, without touching this store.

        Builds the merged table/universe/matrix beside the current
        state: only the new properties are featurized (the pipeline's
        fingerprint-keyed row cache serves every existing one) and only
        the new cross-source pairs are assembled -- existing pair rows
        are copied from the current matrix.  Bit-identical to rebuilding
        the store from scratch on the merged dataset.
        """
        base = self.universe.dataset
        combined = base.merged_with(addition)
        table = PropertyFeatureTable(
            combined, self.table.pipeline.embeddings, pipeline=self.table.pipeline
        )
        universe = PairUniverse(combined)
        old_row_of = self.universe._row_of
        width = self.schema.total_width
        matrix = np.empty((len(universe), width), dtype=FEATURE_DTYPE)
        kept_dst: list[int] = []
        kept_src: list[int] = []
        new_rows: list[int] = []
        new_pairs: list[LabeledPair] = []
        for row, pair in enumerate(universe.pairs):
            old_row = old_row_of.get(pair.key)
            if old_row is None:
                new_rows.append(row)
                new_pairs.append(pair)
            else:
                kept_dst.append(row)
                kept_src.append(old_row)
        if kept_dst:
            matrix[np.array(kept_dst, dtype=np.intp)] = self.matrix[
                np.array(kept_src, dtype=np.intp)
            ]
        if new_pairs:
            matrix[np.array(new_rows, dtype=np.intp)] = self._assemble(
                table, new_pairs
            )
        matrix.setflags(write=False)
        return table, universe, matrix, PairSet(new_pairs)

    def add_source(self, addition: Dataset) -> PairSet:
        """Ingest a new source incrementally; returns the new pairs.

        ``addition`` must contain only sources the store's dataset does
        not already have.  The store's dataset, universe, table and
        matrix are replaced by merged equivalents via the
        :meth:`_delta_parts` increment.  Mutates *this* store in place
        (the batch-ingestion contract); concurrent readers must use
        :meth:`with_source` instead.
        """
        table, universe, matrix, new_pairs = self._delta_parts(addition)
        self.table = table
        self.matrix = matrix
        self.universe = universe
        self.dataset_fingerprint = universe.dataset_fingerprint
        with self._cache_lock:
            self._gather_cache.clear()
            self._gather_bytes = 0
            self._matrix64 = None
            self._gather64_cache.clear()
        return new_pairs

    def with_source(self, addition: Dataset) -> tuple["PairFeatureStore", PairSet]:
        """A *new* store with ``addition`` fused in; this store untouched.

        The copy-on-swap counterpart of :meth:`add_source`: the serve
        layer's graceful reload builds the successor store beside the
        live one (same :meth:`_delta_parts` increment, so the new matrix
        is bit-identical to a cold rebuild on the merged dataset) and
        swaps it in atomically while in-flight requests keep reading the
        old store.  The two stores share the staged pipeline -- and so
        its fingerprint-keyed row cache -- but nothing mutable.
        """
        table, universe, matrix, new_pairs = self._delta_parts(addition)
        store = PairFeatureStore(
            table,
            universe,
            gather_cache_size=self._gather_cache_size,
            gather_cache_bytes=self._gather_cache_bytes,
            matrix=matrix,
        )
        return store, new_pairs

    def _gathered(self, rows: np.ndarray) -> np.ndarray:
        key = rows.tobytes()
        with self._cache_lock:
            cached = self._gather_cache.get(key)
            if cached is not None:
                self._gather_cache.move_to_end(key)
                return cached
        gathered = self.matrix[rows]
        gathered.setflags(write=False)
        with self._cache_lock:
            self._gather_cache[key] = gathered
            self._gather_bytes += gathered.nbytes
            while self._gather_cache and (
                len(self._gather_cache) > self._gather_cache_size
                or self._gather_bytes > self._gather_cache_bytes
            ):
                _, evicted = self._gather_cache.popitem(last=False)
                self._gather_bytes -= evicted.nbytes
        return gathered

    def features(
        self,
        pairs: list[LabeledPair] | list[tuple[PropertyRef, PropertyRef]] | PairSet,
        config: FeatureConfig,
    ) -> np.ndarray:
        """Feature matrix for ``pairs`` under ``config``.

        Zero-copy whenever the config's blocks are adjacent in the full
        schema (eight of the nine grid cells): the result is a column
        view of the cached row gather.
        """
        if isinstance(pairs, PairSet):
            pairs = pairs.pairs
        if not pairs:
            return np.zeros((0, self.schema.width(config)), dtype=FEATURE_DTYPE)
        rows = self.universe.rows_of(pairs)
        columns = self.schema.active_columns(config)
        return self._gathered(rows)[:, columns]

    def scoring_features(
        self,
        pairs: list[LabeledPair] | list[tuple[PropertyRef, PropertyRef]] | PairSet,
        config: FeatureConfig,
    ) -> np.ndarray:
        """Float64 feature matrix for ``pairs``, ready for the classifier.

        Bit-identical to the classifier's own upcast of
        :meth:`features` (float32 to float64 is exact), but served from
        a lazily built read-only float64 shadow of the full matrix, so
        repeated score phases -- the grid scores the same test subset
        under nine configs per repetition -- skip the per-call upcast
        copy.  The shadow and its small gather cache are score-phase
        state only; training keeps reading the float32 matrix.
        """
        if isinstance(pairs, PairSet):
            pairs = pairs.pairs
        if not pairs:
            return np.zeros((0, self.schema.width(config)), dtype=np.float64)
        with self._cache_lock:
            if self._matrix64 is None:
                matrix64 = np.asarray(self.matrix, dtype=np.float64)
                matrix64.setflags(write=False)
                self._matrix64 = matrix64
            matrix64 = self._matrix64
        rows = self.universe.rows_of(pairs)
        key = rows.tobytes()
        with self._cache_lock:
            gathered = self._gather64_cache.get(key)
            if gathered is not None:
                self._gather64_cache.move_to_end(key)
        if gathered is None:
            gathered = matrix64[rows]
            gathered.setflags(write=False)
            with self._cache_lock:
                self._gather64_cache[key] = gathered
                while len(self._gather64_cache) > self._gather64_cache_size:
                    self._gather64_cache.popitem(last=False)
        return gathered[:, self.schema.active_columns(config)]
