"""Shared pair-feature store: the full Table I matrix, computed once.

The evaluation grid of Section V re-scores the *same* candidate pairs
under nine feature configurations, two training fractions and many
repetitions.  The seed implementation recomputed, per grid cell:

* the cross-source pair enumeration (``build_pairs``, quadratic in the
  property count), once per repetition per cell;
* the pair feature matrix, even though every config's matrix is a
  column subset of one full matrix (see
  :class:`repro.core.pipeline.FeatureSchema`).

This module hoists both.  :class:`PairUniverse` enumerates all
cross-source pairs of a dataset exactly once and serves every
``(sources, within)`` subset by filtering that enumeration -- the
result is element-identical to ``build_pairs``.  :class:`PairFeatureStore`
is a thin gather over the staged pipeline's outputs: the full-width
float32 matrix over the universe is assembled once from the cached
per-property stage columns, then any (pair set, config) request is a
row gather plus a column slice; the gathered full-width submatrix is
cached per pair set, so the nine configs of a grid cell share one
gather and eight of them are zero-copy column views of it.

Stores are keyed by the dataset's content fingerprint: a store never
answers for a dataset it was not built from.  :meth:`PairFeatureStore.add_source`
is the incremental-ingestion path: merging a new source featurizes only
the new properties (the pipeline's fingerprint-keyed row cache serves
every old one) and only the new cross-source pairs, while old pair rows
are copied from the existing matrix.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from time import perf_counter

import numpy as np

from repro.blocking.blockers import Blocker
from repro.blocking.policy import CandidatePolicy
from repro.core.config import FeatureConfig
from repro.core.pair_features import pair_feature_matrix
from repro.core.pipeline import FEATURE_DTYPE
from repro.core.property_features import PropertyFeatureTable
from repro.data.model import Dataset, PropertyRef
from repro.data.pairs import (
    LabeledPair,
    PairSet,
    cross_source_index_pairs,
    sample_training_pairs,
    source_block_bounds,
)
from repro.errors import ConfigurationError


class PairUniverse:
    """The candidate cross-source pairs of a dataset, enumerated once.

    Candidate generation is policy-driven: under the default ``null``
    :class:`~repro.blocking.policy.CandidatePolicy` the universe holds
    every cross-source pair and ``subset`` reproduces
    :func:`repro.data.pairs.build_pairs` exactly (same pair objects,
    same order).  Under a blocking policy only the blocker's candidates
    are enumerated -- the full cross product is never materialised --
    and every downstream consumer (subsets, feature stores, scoring)
    automatically operates on the pruned universe.  Pair identity is
    tracked as sorted index pairs into the sorted property list, never
    as per-pair ``frozenset`` keys.
    """

    def __init__(
        self,
        dataset: Dataset,
        policy: CandidatePolicy | None = None,
        *,
        embeddings=None,
        blocker: Blocker | None = None,
    ) -> None:
        self.dataset = dataset
        self.dataset_fingerprint = dataset.fingerprint()
        self.policy = policy if policy is not None else CandidatePolicy.null()
        self._all_sources = set(dataset.sources())
        properties = dataset.properties()
        if self.policy.is_null:
            # The exact-equivalence path: lexicographic (i, j) index
            # order is the seed nested-loop enumeration order.
            self._blocker: Blocker | None = None
            index_pairs = cross_source_index_pairs(properties)
        else:
            # A pre-resolved blocker is the delta-ingestion handoff: the
            # grown universe reuses the parent's instance so per-property
            # sketch memos survive the merge.
            self._blocker = (
                blocker if blocker is not None else self.policy.resolve(embeddings)
            )
            index_pairs = self._blocker.candidate_index_pairs(dataset, properties)
        pairs: list[LabeledPair] = []
        row_of: dict[tuple[int, int], int] = {}
        for row, (i, j) in enumerate(index_pairs):
            left, right = properties[i], properties[j]
            pairs.append(LabeledPair(left, right, dataset.is_match(left, right)))
            row_of[(i, j)] = row
        self.pairs: tuple[LabeledPair, ...] = tuple(pairs)
        self._row_of = row_of
        self._index_of: dict[PropertyRef, int] = {
            ref: index for index, ref in enumerate(properties)
        }
        self._block_sizes = [
            end - start for start, end in source_block_bounds(properties)
        ]
        self._stats_cache: dict | None = None
        self._subset_cache: dict[tuple[frozenset[str], bool], PairSet] = {}
        # rows_of is a per-pair Python loop; the same (memoised) pair
        # list recurs for every config of a grid cell, so cache the row
        # arrays by list identity.  Entries hold a strong reference to
        # the list, which keeps the id stable while cached.  Sizing: a
        # grid touches repetitions+1 entries per train fraction, and the
        # entries are small (index arrays / pair lists), so the caps sit
        # well above any realistic repetition count.
        self._rows_cache: OrderedDict[int, tuple[object, np.ndarray]] = OrderedDict()
        self._rows_cache_size = 256
        self._sample_cache: OrderedDict[tuple, tuple[object, PairSet]] = OrderedDict()
        self._sample_cache_size = 256
        # The memo dicts above are mutated on lookup (LRU move_to_end /
        # eviction), so concurrent read-only *requests* -- the serve
        # layer's thread-per-connection handlers all gathering from one
        # warm store -- must serialise cache access.  The lock guards
        # only the bookkeeping; the enumeration itself is immutable.
        self._cache_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.pairs)

    def subset(
        self, sources: list[str] | None = None, *, within: bool = True
    ) -> PairSet:
        """The ``build_pairs(dataset, sources, within=...)`` pair set."""
        if sources is None:
            selected = self._all_sources
        else:
            unknown = set(sources) - self._all_sources
            if unknown:
                raise ConfigurationError(f"unknown sources: {sorted(unknown)}")
            selected = set(sources)
        # The same split recurs across the nine configs of a grid cell;
        # memoise so the filter runs once per (sources, within).
        cache_key = (frozenset(selected), within)
        with self._cache_lock:
            cached = self._subset_cache.get(cache_key)
            if cached is not None:
                return cached
        kept = [
            pair
            for pair in self.pairs
            if (pair.left.source in selected and pair.right.source in selected)
            == within
        ]
        with self._cache_lock:
            result = self._subset_cache.setdefault(cache_key, PairSet(kept))
        return result

    def training_sample(
        self,
        candidates: PairSet,
        negative_ratio: float,
        rng_seed: tuple[int, ...],
    ) -> PairSet:
        """Memoised :func:`sample_training_pairs` over a memoised subset.

        Every config of a grid cell draws the same training sample (the
        rng is reseeded from ``rng_seed`` per draw), so the sample --
        like the subset it comes from -- is computed once and the shared
        ``PairSet`` object lets the row/gather caches downstream hit.
        The draw consumes a fresh generator exactly as the direct path
        does, so the sampled content is bit-identical.
        """
        key = (id(candidates), float(negative_ratio), tuple(rng_seed))
        with self._cache_lock:
            cached = self._sample_cache.get(key)
            if cached is not None and cached[0] is candidates:
                self._sample_cache.move_to_end(key)
                return cached[1]
        sample = sample_training_pairs(
            candidates, negative_ratio, np.random.default_rng(list(rng_seed))
        )
        with self._cache_lock:
            self._sample_cache[key] = (candidates, sample)
            if len(self._sample_cache) > self._sample_cache_size:
                self._sample_cache.popitem(last=False)
        return sample

    @property
    def is_blocked(self) -> bool:
        """Whether a non-null candidate policy pruned this universe."""
        return self._blocker is not None

    def total_cross_pairs(self) -> int:
        """Full cross-product pair count, from per-source counts only."""
        total = sum(self._block_sizes)
        all_pairs = total * (total - 1) // 2
        within = sum(size * (size - 1) // 2 for size in self._block_sizes)
        return all_pairs - within

    def blocking_stats(self) -> dict:
        """Candidate counts and quality of this universe's policy.

        ``pair_recall`` measures kept true matches against the *full*
        ground truth (``dataset.matching_pairs()``), so a pruned true
        pair lowers it even though the universe never enumerated the
        pair; ``reduction_ratio`` is the fraction of the cross product
        pruned.  The null policy reports 1.0 / 0.0 by construction.
        """
        if self._stats_cache is None:
            total = self.total_cross_pairs()
            candidates = len(self.pairs)
            true_total = len(self.dataset.matching_pairs())
            kept_true = sum(1 for pair in self.pairs if pair.label)
            self._stats_cache = {
                "policy": self.policy.label,
                "candidates": candidates,
                "total_pairs": total,
                "reduction_ratio": (
                    1.0 - candidates / total if total else 0.0
                ),
                "pair_recall": (
                    kept_true / true_total if true_total else 1.0
                ),
            }
        return dict(self._stats_cache)

    def missed_true_pairs(
        self, sources: list[str] | None = None, *, within: bool = True
    ) -> int:
        """True matches the policy pruned from a ``(sources, within)`` slice.

        Evaluation adds these to the false negatives so F1 stays honest
        against the full ground truth even when the test pairs come from
        a pruned universe.  Zero under the null policy by construction.
        """
        if not self.is_blocked:
            return 0
        if sources is None:
            selected = self._all_sources
        else:
            unknown = set(sources) - self._all_sources
            if unknown:
                raise ConfigurationError(f"unknown sources: {sorted(unknown)}")
            selected = set(sources)
        slice_true = 0
        for key in self.dataset.matching_pairs():
            left, right = tuple(key)
            both_inside = left.source in selected and right.source in selected
            if within == both_inside:
                slice_true += 1
        kept_true = sum(
            1 for pair in self.subset(sources, within=within).pairs if pair.label
        )
        return slice_true - kept_true

    def _row_lookup(self, left: PropertyRef, right: PropertyRef) -> int | None:
        """Universe row of an unordered ref pair, or ``None``."""
        i = self._index_of.get(left)
        j = self._index_of.get(right)
        if i is None or j is None:
            return None
        return self._row_of.get((i, j) if i < j else (j, i))

    def row_of(self, pair: LabeledPair | tuple[PropertyRef, PropertyRef]) -> int:
        """Universe row of an (unordered) pair."""
        left, right = (
            (pair.left, pair.right) if isinstance(pair, LabeledPair) else pair
        )
        row = self._row_lookup(left, right)
        if row is None:
            raise ConfigurationError(
                "pair is not part of this dataset's cross-source universe"
                + (
                    f" under blocking policy {self.policy.label!r}"
                    if self.is_blocked
                    else ""
                )
            )
        return row

    def rows_of(
        self, pairs: list[LabeledPair] | list[tuple[PropertyRef, PropertyRef]]
    ) -> np.ndarray:
        """Universe rows of many pairs, in order."""
        with self._cache_lock:
            cached = self._rows_cache.get(id(pairs))
            if cached is not None and cached[0] is pairs:
                self._rows_cache.move_to_end(id(pairs))
                return cached[1]
        rows = np.array([self.row_of(pair) for pair in pairs], dtype=np.intp)
        rows.setflags(write=False)
        with self._cache_lock:
            self._rows_cache[id(pairs)] = (pairs, rows)
            if len(self._rows_cache) > self._rows_cache_size:
                self._rows_cache.popitem(last=False)
        return rows


class PairFeatureStore:
    """Full-width pair features over a :class:`PairUniverse`, shared.

    The matrix is assembled once at construction (a thin gather over
    the pipeline's columnar stage outputs); every
    ``features(pairs, config)`` call afterwards is a cached row gather
    plus a column slice.  The store is read-only: the full matrix and
    the cached gathers have their write flags cleared, so the views
    handed to different grid cells cannot corrupt each other.
    """

    def __init__(
        self,
        table: PropertyFeatureTable,
        universe: PairUniverse,
        *,
        gather_cache_size: int = 64,
        gather_cache_bytes: int = 1 << 30,
        matrix: np.ndarray | None = None,
    ) -> None:
        if table.dataset_fingerprint != universe.dataset_fingerprint:
            raise ConfigurationError(
                "feature table and pair universe come from different datasets"
            )
        self.table = table
        self.universe = universe
        self.dataset_fingerprint = universe.dataset_fingerprint
        self.schema = table.pipeline.schema
        self.timings: dict[str, float] = {}
        # A prebuilt matrix is the delta-construction path
        # (with_source): the caller assembled it from copied old rows
        # plus freshly featurized new ones and it is already
        # bit-identical to what _assemble would produce.
        if matrix is None:
            matrix = self._assemble(table, list(universe.pairs))
        self.matrix = matrix
        # Gathers are the memory-heavy cache (full-width row submatrices).
        # A grid touches repetitions+1 of them per train fraction, so the
        # count cap sits above realistic repetition counts; the byte
        # budget bounds worst-case memory at large dataset scales.
        self._gather_cache: OrderedDict[bytes, np.ndarray] = OrderedDict()
        self._gather_cache_size = gather_cache_size
        self._gather_cache_bytes = gather_cache_bytes
        self._gather_bytes = 0
        # Float64 shadow for the score phase (see scoring_features).
        self._matrix64: np.ndarray | None = None
        self._gather64_cache: OrderedDict[bytes, np.ndarray] = OrderedDict()
        self._gather64_cache_size = 8
        # Serialises gather-cache bookkeeping so concurrent read-only
        # requests (serve-layer handler threads) can share one store.
        self._cache_lock = threading.Lock()

    def _assemble(
        self, table: PropertyFeatureTable, pairs: list[LabeledPair]
    ) -> np.ndarray:
        """Full-width float32 rows for ``pairs``, via the pipeline."""
        pipeline = table.pipeline
        started = perf_counter()
        distance_before = pipeline.stage_seconds.get("name_distance", 0.0)
        matrix = pipeline.pair_matrix(table, pairs, FeatureConfig())
        matrix.setflags(write=False)
        self.timings["name_distances"] = self.timings.get(
            "name_distances", 0.0
        ) + (pipeline.stage_seconds.get("name_distance", 0.0) - distance_before)
        self.timings["build"] = self.timings.get("build", 0.0) + (
            perf_counter() - started
        )
        return matrix

    @property
    def pipeline(self):
        """The :class:`~repro.core.pipeline.FeaturePipeline` rows come from."""
        return self.table.pipeline

    @classmethod
    def build(
        cls,
        dataset: Dataset,
        embeddings,
        universe: PairUniverse | None = None,
        *,
        policy: CandidatePolicy | None = None,
    ) -> "PairFeatureStore":
        """Construct table, universe and store in one step.

        ``policy`` selects the candidate-generation policy when no
        prebuilt ``universe`` is given; ``embeddings`` double as the
        vector source for embedding-bucket policies.
        """
        if universe is None:
            universe = PairUniverse(dataset, policy, embeddings=embeddings)
        table = PropertyFeatureTable(dataset, embeddings)
        return cls(table, universe)

    def serves(self, dataset: Dataset) -> bool:
        """Whether this store was built from ``dataset``'s content."""
        return self.dataset_fingerprint == dataset.fingerprint()

    def _delta_parts(
        self, addition: Dataset
    ) -> tuple[PropertyFeatureTable, PairUniverse, np.ndarray, PairSet]:
        """The PR 5 incremental merge, without touching this store.

        Builds the merged table/universe/matrix beside the current
        state: only the new properties are featurized (the pipeline's
        fingerprint-keyed row cache serves every existing one) and only
        the new candidate pairs are assembled -- existing pair rows are
        copied from the current matrix.  The merged universe inherits
        this store's candidate policy *and* its resolved blocker, so
        under a bucket policy the old properties' sketches are memo
        hits and re-blocking is a bucket lookup plus fresh sketches for
        the new source -- never a new-times-all cross walk.
        Bit-identical to rebuilding the store from scratch on the
        merged dataset under the same policy.
        """
        base = self.universe.dataset
        combined = base.merged_with(addition)
        table = PropertyFeatureTable(
            combined, self.table.pipeline.embeddings, pipeline=self.table.pipeline
        )
        universe = PairUniverse(
            combined,
            self.universe.policy,
            blocker=self.universe._blocker,
        )
        old_universe = self.universe
        width = self.schema.total_width
        matrix = np.empty((len(universe), width), dtype=FEATURE_DTYPE)
        kept_dst: list[int] = []
        kept_src: list[int] = []
        new_rows: list[int] = []
        new_pairs: list[LabeledPair] = []
        for row, pair in enumerate(universe.pairs):
            old_row = old_universe._row_lookup(pair.left, pair.right)
            if old_row is None:
                new_rows.append(row)
                new_pairs.append(pair)
            else:
                kept_dst.append(row)
                kept_src.append(old_row)
        if kept_dst:
            matrix[np.array(kept_dst, dtype=np.intp)] = self.matrix[
                np.array(kept_src, dtype=np.intp)
            ]
        if new_pairs:
            matrix[np.array(new_rows, dtype=np.intp)] = self._assemble(
                table, new_pairs
            )
        matrix.setflags(write=False)
        return table, universe, matrix, PairSet(new_pairs)

    def add_source(self, addition: Dataset) -> PairSet:
        """Ingest a new source incrementally; returns the new pairs.

        ``addition`` must contain only sources the store's dataset does
        not already have.  The store's dataset, universe, table and
        matrix are replaced by merged equivalents via the
        :meth:`_delta_parts` increment.  Mutates *this* store in place
        (the batch-ingestion contract); concurrent readers must use
        :meth:`with_source` instead.
        """
        table, universe, matrix, new_pairs = self._delta_parts(addition)
        self.table = table
        self.matrix = matrix
        self.universe = universe
        self.dataset_fingerprint = universe.dataset_fingerprint
        with self._cache_lock:
            self._gather_cache.clear()
            self._gather_bytes = 0
            self._matrix64 = None
            self._gather64_cache.clear()
        return new_pairs

    def with_source(self, addition: Dataset) -> tuple["PairFeatureStore", PairSet]:
        """A *new* store with ``addition`` fused in; this store untouched.

        The copy-on-swap counterpart of :meth:`add_source`: the serve
        layer's graceful reload builds the successor store beside the
        live one (same :meth:`_delta_parts` increment, so the new matrix
        is bit-identical to a cold rebuild on the merged dataset) and
        swaps it in atomically while in-flight requests keep reading the
        old store.  The two stores share the staged pipeline -- and so
        its fingerprint-keyed row cache -- but nothing mutable.
        """
        table, universe, matrix, new_pairs = self._delta_parts(addition)
        store = PairFeatureStore(
            table,
            universe,
            gather_cache_size=self._gather_cache_size,
            gather_cache_bytes=self._gather_cache_bytes,
            matrix=matrix,
        )
        return store, new_pairs

    def _gathered(self, rows: np.ndarray) -> np.ndarray:
        key = rows.tobytes()
        with self._cache_lock:
            cached = self._gather_cache.get(key)
            if cached is not None:
                self._gather_cache.move_to_end(key)
                return cached
        gathered = self.matrix[rows]
        gathered.setflags(write=False)
        with self._cache_lock:
            self._gather_cache[key] = gathered
            self._gather_bytes += gathered.nbytes
            while self._gather_cache and (
                len(self._gather_cache) > self._gather_cache_size
                or self._gather_bytes > self._gather_cache_bytes
            ):
                _, evicted = self._gather_cache.popitem(last=False)
                self._gather_bytes -= evicted.nbytes
        return gathered

    def _covers(
        self, pairs: list[LabeledPair] | list[tuple[PropertyRef, PropertyRef]]
    ) -> bool:
        """Whether every pair has a row in this store's universe."""
        lookup = self.universe._row_lookup
        for pair in pairs:
            left, right = (
                (pair.left, pair.right)
                if isinstance(pair, LabeledPair)
                else pair
            )
            if lookup(left, right) is None:
                return False
        return True

    def features(
        self,
        pairs: list[LabeledPair] | list[tuple[PropertyRef, PropertyRef]] | PairSet,
        config: FeatureConfig,
    ) -> np.ndarray:
        """Feature matrix for ``pairs`` under ``config``.

        Zero-copy whenever the config's blocks are adjacent in the full
        schema (eight of the nine grid cells): the result is a column
        view of the cached row gather.  Under a blocking policy a
        request may include pairs the universe pruned (the incremental
        clusterer scores arbitrary new-vs-existing links); those
        requests are assembled directly from the staged pipeline, which
        yields the same feature values as universe rows would.
        """
        if isinstance(pairs, PairSet):
            pairs = pairs.pairs
        if not pairs:
            return np.zeros((0, self.schema.width(config)), dtype=FEATURE_DTYPE)
        if self.universe.is_blocked and not self._covers(pairs):
            return pair_feature_matrix(self.table, list(pairs), config)
        rows = self.universe.rows_of(pairs)
        columns = self.schema.active_columns(config)
        return self._gathered(rows)[:, columns]

    def scoring_features(
        self,
        pairs: list[LabeledPair] | list[tuple[PropertyRef, PropertyRef]] | PairSet,
        config: FeatureConfig,
    ) -> np.ndarray:
        """Float64 feature matrix for ``pairs``, ready for the classifier.

        Bit-identical to the classifier's own upcast of
        :meth:`features` (float32 to float64 is exact), but served from
        a lazily built read-only float64 shadow of the full matrix, so
        repeated score phases -- the grid scores the same test subset
        under nine configs per repetition -- skip the per-call upcast
        copy.  The shadow and its small gather cache are score-phase
        state only; training keeps reading the float32 matrix.
        """
        if isinstance(pairs, PairSet):
            pairs = pairs.pairs
        if not pairs:
            return np.zeros((0, self.schema.width(config)), dtype=np.float64)
        if self.universe.is_blocked and not self._covers(pairs):
            # Same out-of-universe fallback as :meth:`features`; float32
            # to float64 is exact, so this matches the classifier's own
            # upcast of the direct path bit for bit.
            return np.asarray(
                pair_feature_matrix(self.table, list(pairs), config),
                dtype=np.float64,
            )
        with self._cache_lock:
            if self._matrix64 is None:
                matrix64 = np.asarray(self.matrix, dtype=np.float64)
                matrix64.setflags(write=False)
                self._matrix64 = matrix64
            matrix64 = self._matrix64
        rows = self.universe.rows_of(pairs)
        key = rows.tobytes()
        with self._cache_lock:
            gathered = self._gather64_cache.get(key)
            if gathered is not None:
                self._gather64_cache.move_to_end(key)
        if gathered is None:
            gathered = matrix64[rows]
            gathered.setflags(write=False)
            with self._cache_lock:
                self._gather64_cache[key] = gathered
                while len(self._gather64_cache) > self._gather64_cache_size:
                    self._gather64_cache.popitem(last=False)
        return gathered[:, self.schema.active_columns(config)]
