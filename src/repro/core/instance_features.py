"""Instance features: ``iFeatures`` of Algorithm 1 (Table I rows 1-4).

For each property instance value the paper computes:

* row 1 -- fraction and count of nine character types (18 features);
* row 2 -- fraction and count of five token types (10 features);
* row 3 -- the numeric value, -1 when not a number (1 feature);
* row 4 -- the average word-embedding vector of the value (300 features
  with the paper's GloVe; dimension-d here).

Rows 1-3 are the TAPON-style *meta-features* (29 in total, matching the
paper's count: 329 property features = 29 meta + 300 embedding).
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.base import WordEmbeddings
from repro.text.chartypes import NUM_CHARACTER_FEATURES, count_character_types
from repro.text.tokenize import NUM_TOKEN_FEATURES, count_token_types, parse_numeric

#: Dimensionality of the non-embedding instance meta-features (rows 1-3).
NUM_META_FEATURES = NUM_CHARACTER_FEATURES + NUM_TOKEN_FEATURES + 1


def instance_meta_features(value: str) -> np.ndarray:
    """The 29 meta-features of one instance value (Table I rows 1-3).

    >>> features = instance_meta_features("20.1 MP")
    >>> features.shape
    (29,)
    """
    char_features = count_character_types(value).as_features()
    token_features = count_token_types(value).as_features()
    numeric = parse_numeric(value)
    return np.array(char_features + token_features + [numeric], dtype=np.float64)


def instance_meta_matrix(values: list[str]) -> np.ndarray:
    """Meta-features for a batch of values, shape ``(n, 29)``."""
    if not values:
        return np.zeros((0, NUM_META_FEATURES))
    return np.stack([instance_meta_features(value) for value in values])


def instance_embedding_matrix(
    values: list[str], embeddings: WordEmbeddings
) -> np.ndarray:
    """Average word embeddings for a batch of values (Table I row 4)."""
    if not values:
        return np.zeros((0, embeddings.dimension))
    return np.stack([embeddings.embed_text(value) for value in values])
