"""Property features: ``pFeatures`` of Algorithm 1 (Table I rows 5-6).

A :class:`PropertyFeatureTable` holds, for every property of a dataset:

* the average of its instances' meta-features (part of row 5);
* the average of its instances' embedding vectors (rest of row 5);
* the average word embedding of its *name* (row 6).

The table is matrix-shaped (one row per property) so pair features can be
assembled with vectorised indexing rather than per-pair Python work.
"""

from __future__ import annotations

import numpy as np

from repro.core.instance_features import (
    NUM_META_FEATURES,
    instance_meta_matrix,
)
from repro.data.model import Dataset, PropertyRef
from repro.embeddings.base import WordEmbeddings
from repro.errors import DataError


class PropertyFeatureTable:
    """Per-property feature matrices for one dataset.

    Attributes
    ----------
    refs:
        Property order; row ``i`` of every matrix describes ``refs[i]``.
    meta:
        ``(n_properties, 29)`` -- averaged instance meta-features.
    value_embedding:
        ``(n_properties, d)`` -- averaged instance embeddings.
    name_embedding:
        ``(n_properties, d)`` -- name embeddings.
    """

    def __init__(self, dataset: Dataset, embeddings: WordEmbeddings) -> None:
        #: Content fingerprint of the dataset the table was built from.
        self.dataset_fingerprint: str = dataset.fingerprint()
        self.refs: list[PropertyRef] = dataset.properties()
        self._row_of: dict[PropertyRef, int] = {
            ref: i for i, ref in enumerate(self.refs)
        }
        n = len(self.refs)
        dimension = embeddings.dimension
        self.meta = np.zeros((n, NUM_META_FEATURES))
        self.value_embedding = np.zeros((n, dimension))
        self.name_embedding = np.zeros((n, dimension))
        for i, ref in enumerate(self.refs):
            values = dataset.values_of(ref)
            if values:
                self.meta[i] = instance_meta_matrix(values).mean(axis=0)
                total = np.zeros(dimension)
                for value in values:
                    total += embeddings.embed_text(value)
                self.value_embedding[i] = total / len(values)
            self.name_embedding[i] = embeddings.embed_text(ref.name)

    def __len__(self) -> int:
        return len(self.refs)

    @property
    def embedding_dimension(self) -> int:
        """Dimensionality of the embedding blocks."""
        return self.name_embedding.shape[1]

    def row_of(self, ref: PropertyRef) -> int:
        """Matrix row index of a property."""
        try:
            return self._row_of[ref]
        except KeyError:
            raise DataError(f"property not in feature table: {ref}") from None

    def rows_of(self, refs: list[PropertyRef]) -> np.ndarray:
        """Row indices for a list of properties."""
        return np.array([self.row_of(ref) for ref in refs], dtype=np.int64)
