"""Property features: ``pFeatures`` of Algorithm 1 (Table I rows 5-6).

A :class:`PropertyFeatureTable` holds, for every property of a dataset,
the columnar float32 outputs of the property-level pipeline stages
(:mod:`repro.core.pipeline`):

* ``property_aggregate`` -- averaged instance meta-features and
  averaged instance embeddings (row 5);
* ``name_embedding``     -- the average word embedding of the name (row 6).

The table is matrix-shaped (one row per property) so pair features can
be assembled with vectorised indexing rather than per-pair Python work.
Construction goes through a :class:`~repro.core.pipeline.FeaturePipeline`;
passing a shared pipeline lets tables for overlapping datasets (grid
splits, incrementally ingested sources) reuse cached per-property rows
instead of refeaturizing.
"""

from __future__ import annotations

import numpy as np

from repro.core.instance_features import NUM_META_FEATURES
from repro.core.pipeline import FeaturePipeline
from repro.data.model import Dataset, PropertyRef
from repro.embeddings.base import WordEmbeddings
from repro.errors import ConfigurationError, DataError


class PropertyFeatureTable:
    """Per-property feature matrices for one dataset.

    Attributes
    ----------
    refs:
        Property order; row ``i`` of every matrix describes ``refs[i]``.
    meta:
        ``(n_properties, 29)`` -- averaged instance meta-features
        (a view of the ``property_aggregate`` stage columns).
    value_embedding:
        ``(n_properties, d)`` -- averaged instance embeddings (ditto).
    name_embedding:
        ``(n_properties, d)`` -- name embeddings.

    All matrices are read-only float32 stage outputs.
    """

    def __init__(
        self,
        dataset: Dataset,
        embeddings: WordEmbeddings,
        pipeline: FeaturePipeline | None = None,
    ) -> None:
        if pipeline is None:
            pipeline = FeaturePipeline(embeddings)
        elif pipeline.embeddings is not embeddings:
            raise ConfigurationError(
                "feature pipeline is bound to a different embedding space"
            )
        self.pipeline = pipeline
        #: Content fingerprint of the dataset the table was built from.
        self.dataset_fingerprint: str = dataset.fingerprint()
        self.refs: list[PropertyRef] = dataset.properties()
        self._row_of: dict[PropertyRef, int] = {
            ref: i for i, ref in enumerate(self.refs)
        }
        self._columns = pipeline.property_columns(dataset)
        aggregate = self._columns["property_aggregate"]
        self.meta = aggregate[:, :NUM_META_FEATURES]
        self.value_embedding = aggregate[:, NUM_META_FEATURES:]
        self.name_embedding = self._columns["name_embedding"]

    def __len__(self) -> int:
        return len(self.refs)

    @property
    def embedding_dimension(self) -> int:
        """Dimensionality of the embedding blocks."""
        return self.name_embedding.shape[1]

    def stage_columns(self, stage_name: str) -> np.ndarray:
        """Columnar output of one property-level stage, ``(n, width)``."""
        try:
            return self._columns[stage_name]
        except KeyError:
            raise ConfigurationError(
                f"no property-level stage named {stage_name!r}"
            ) from None

    def row_of(self, ref: PropertyRef) -> int:
        """Matrix row index of a property."""
        try:
            return self._row_of[ref]
        except KeyError:
            raise DataError(f"property not in feature table: {ref}") from None

    def rows_of(self, refs: list[PropertyRef]) -> np.ndarray:
        """Row indices for a list of properties."""
        return np.array([self.row_of(ref) for ref in refs], dtype=np.int64)
