"""Save / load a trained :class:`~repro.core.matcher.LeapmeMatcher`.

A matcher bundle is a directory containing everything needed to score
new property pairs without retraining:

* ``embeddings.npz`` -- the word-embedding space;
* ``network.npz``    -- the trained classifier network;
* ``scaler.npz``     -- the feature scaler (when enabled);
* ``config.json``    -- feature configuration + hyper-parameters + the
  resolved feature schema + the candidate-generation policy (bundle
  format 3; format-1/2 bundles without a schema and/or policy still
  load -- the schema is rederived and the policy defaults to null).

Every file is written atomically (temp file + ``os.replace``), and
``config.json`` -- the file :func:`load_matcher` requires first -- is
written last, so a process killed mid-save never leaves a bundle that
loads but is corrupt.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.blocking.policy import CandidatePolicy
from repro.core.classifier import FittedState, LeapmeClassifier
from repro.core.config import FeatureConfig, FeatureKinds, FeatureScope, LeapmeConfig
from repro.core.matcher import LeapmeMatcher
from repro.core.pipeline import ResolvedSchema
from repro.embeddings.store import load_embeddings, save_embeddings
from repro.errors import ConfigurationError, DataError
from repro.ioutils import atomic_save, atomic_write_text
from repro.ml.scaling import StandardScaler
from repro.nn.schedule import TrainingSchedule
from repro.nn.serialize import load_network, save_network

_FORMAT_VERSION = 3

#: Bundle format versions :func:`load_matcher` understands.  Format 1
#: predates the staged pipeline and carries no ``schema`` entry; format
#: 2 predates first-class candidate generation and carries no
#: ``candidate_policy`` entry.
_SUPPORTED_VERSIONS = frozenset({1, 2, _FORMAT_VERSION})


def save_matcher(matcher: LeapmeMatcher, directory: str | Path) -> None:
    """Write a fitted matcher bundle to ``directory`` (created if needed)."""
    classifier = matcher.classifier  # raises NotFittedError when unfitted
    state = classifier.fitted_state()  # raises when no trained network
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_embeddings(matcher.embeddings, directory / "embeddings.npz")
    save_network(state.network, directory / "network.npz")
    if state.scaler is not None:
        atomic_save(
            directory / "scaler.npz",
            lambda path: np.savez_compressed(
                path, mean=state.scaler.mean_, scale=state.scaler.scale_
            ),
            suffix=".npz",
        )
    config = {
        "version": _FORMAT_VERSION,
        "feature_scope": matcher.feature_config.scope.value,
        "feature_kinds": matcher.feature_config.kinds.value,
        "schema": matcher.schema.resolve(matcher.feature_config).to_dict(),
        "hidden_sizes": list(matcher.config.hidden_sizes),
        "batch_size": matcher.config.batch_size,
        "schedule": [
            [phase.epochs, phase.learning_rate]
            for phase in matcher.config.schedule.phases
        ],
        "negative_ratio": matcher.config.negative_ratio,
        "decision_threshold": matcher.config.decision_threshold,
        "scale_features": matcher.config.scale_features,
        "seed": matcher.config.seed,
        "candidate_policy": matcher.candidate_policy.to_dict(),
    }
    atomic_write_text(directory / "config.json", json.dumps(config, indent=2))


def load_matcher(directory: str | Path) -> LeapmeMatcher:
    """Read a matcher bundle written by :func:`save_matcher`.

    The returned matcher is ready to ``score_pairs`` immediately (it will
    build the property feature table for whatever dataset it is applied
    to, exactly as a freshly fitted matcher would).
    """
    directory = Path(directory)
    config_path = directory / "config.json"
    if not config_path.exists():
        raise DataError(f"not a matcher bundle (missing config.json): {directory}")
    payload = json.loads(config_path.read_text())
    if payload.get("version") not in _SUPPORTED_VERSIONS:
        raise DataError(f"unsupported bundle version: {payload.get('version')!r}")
    feature_config = FeatureConfig(
        scope=FeatureScope(payload["feature_scope"]),
        kinds=FeatureKinds(payload["feature_kinds"]),
    )
    leapme_config = LeapmeConfig(
        hidden_sizes=tuple(payload["hidden_sizes"]),
        batch_size=payload["batch_size"],
        schedule=TrainingSchedule.from_pairs(
            [(int(epochs), float(rate)) for epochs, rate in payload["schedule"]]
        ),
        negative_ratio=payload["negative_ratio"],
        decision_threshold=payload["decision_threshold"],
        scale_features=payload["scale_features"],
        seed=payload["seed"],
    )
    policy = CandidatePolicy.null()
    if "candidate_policy" in payload:
        try:
            policy = CandidatePolicy.from_dict(payload["candidate_policy"])
        except ConfigurationError as error:
            raise DataError(f"bundle candidate policy is corrupt: {error}") from error
    embeddings = load_embeddings(directory / "embeddings.npz")
    matcher = LeapmeMatcher(
        embeddings, feature_config, leapme_config, candidate_policy=policy
    )
    if not policy.is_null:
        # Re-verify the stored policy resolves against the bundle's own
        # embeddings (an embedding-bucket policy needs them), the same
        # way the saved schema below is re-verified against geometry.
        try:
            policy.resolve(embeddings)
        except ConfigurationError as error:
            raise DataError(
                f"bundle candidate policy {policy.label!r} does not resolve: {error}"
            ) from error
    if "schema" in payload:
        saved = ResolvedSchema.from_dict(payload["schema"])
        rederived = matcher.schema.resolve(feature_config)
        if saved != rederived:
            raise DataError(
                "bundle schema does not match this pipeline's geometry "
                f"(saved {saved.dimension} columns for "
                f"{saved.scope}/{saved.kinds} at d={saved.embedding_dimension}, "
                f"rederived {rederived.dimension})"
            )
    network = load_network(directory / "network.npz")
    scaler = None
    scaler_path = directory / "scaler.npz"
    if scaler_path.exists():
        with np.load(scaler_path, allow_pickle=False) as arrays:
            scaler = StandardScaler()
            scaler.mean_ = arrays["mean"]
            scaler.scale_ = arrays["scale"]
    classifier = LeapmeClassifier(leapme_config).restore_fitted_state(
        FittedState(network=network, scaler=scaler)
    )
    matcher._classifier = classifier
    return matcher
