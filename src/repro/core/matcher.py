"""The end-to-end LEAPME matcher (Algorithm 1).

``prepare`` covers steps 1-4 (feature computation), ``fit`` step 5's
training half and ``score_pairs`` the classification of unlabeled pairs
into the similarity graph.
"""

from __future__ import annotations

import copy
from time import perf_counter

import numpy as np

from repro.core.api import Matcher
from repro.core.classifier import LeapmeClassifier, ResilientClassifier
from repro.core.config import FeatureConfig, LeapmeConfig
from repro.core.pair_features import pair_feature_matrix
from repro.core.pipeline import FeaturePipeline, FeatureSchema
from repro.core.property_features import PropertyFeatureTable
from repro.data.model import Dataset
from repro.data.pairs import LabeledPair, PairSet
from repro.embeddings.base import WordEmbeddings
from repro.errors import ConfigurationError, NotFittedError


class LeapmeMatcher(Matcher):
    """Supervised property matcher with embedding + instance features.

    Parameters
    ----------
    embeddings:
        The word-embedding space (the paper uses pre-trained GloVe; this
        reproduction trains a substitute, see :mod:`repro.embeddings`).
    feature_config:
        Which Table I feature blocks to use; defaults to the full set.
    config:
        Network hyper-parameters; defaults to the paper's (Section IV-D).
    classifier_factory:
        Builds the pair classifier at fit time.  Defaults to the paper's
        neural network (:class:`LeapmeClassifier`); pass a factory
        returning a :class:`repro.core.classical.ClassicalPairClassifier`
        to ablate the classifier family.
    resilient:
        When true, train through the
        :class:`~repro.core.classifier.ResilientClassifier` degradation
        ladder (reduced learning rate, then classical fallback) instead
        of letting a diverged run abort; ``last_degradation`` reports
        which rung the most recent :meth:`fit` ended on.  Ignored when
        an explicit ``classifier_factory`` is given.
    candidate_policy:
        The :class:`~repro.blocking.policy.CandidatePolicy` every
        feature store this matcher builds enumerates candidates with.
        Defaults to the exact-equivalence null policy (all cross-source
        pairs); persisted in matcher bundles and re-verified on load.
    """

    is_supervised = True

    def __init__(
        self,
        embeddings: WordEmbeddings,
        feature_config: FeatureConfig | None = None,
        config: LeapmeConfig | None = None,
        classifier_factory=None,
        resilient: bool = False,
        candidate_policy=None,
    ) -> None:
        from repro.blocking.policy import CandidatePolicy

        self.embeddings = embeddings
        self.feature_config = feature_config if feature_config is not None else FeatureConfig()
        self.config = config if config is not None else LeapmeConfig()
        self.threshold = self.config.decision_threshold
        self.candidate_policy = (
            candidate_policy if candidate_policy is not None else CandidatePolicy.null()
        )
        self.name = f"LEAPME[{self.feature_config.label()}]"
        if classifier_factory is not None:
            self._classifier_factory = classifier_factory
        elif resilient:
            self._classifier_factory = lambda: ResilientClassifier(self.config)
        else:
            self._classifier_factory = lambda: LeapmeClassifier(self.config)
        #: The staged featurization pipeline; its per-property row cache
        #: is shared by every table/store this matcher builds.
        self.pipeline = FeaturePipeline(embeddings)
        self._table: PropertyFeatureTable | None = None
        self._table_key: str | None = None
        self._store = None
        self._classifier: LeapmeClassifier | None = None
        #: Degradation label of the most recent fit (None when the
        #: classifier trained normally or does not report degradation).
        self.last_degradation: str | None = None
        #: Cumulative seconds spent assembling pair-feature matrices;
        #: the runner's phase instrumentation reads deltas of this.
        self.feature_seconds: float = 0.0

    def prepare(self, dataset: Dataset) -> None:
        """Compute the property feature table (Algorithm 1 steps 1-4).

        A no-op when an attached :class:`PairFeatureStore` already
        serves this dataset: the store embeds the same table content.
        """
        if self._store is not None and self._store.serves(dataset):
            return
        self._table = PropertyFeatureTable(
            dataset, self.embeddings, pipeline=self.pipeline
        )
        self._table_key = self._table.dataset_fingerprint

    @property
    def schema(self) -> FeatureSchema:
        """The feature-column geometry this matcher scores with."""
        return self.pipeline.schema

    @property
    def is_fitted(self) -> bool:
        """Whether the pair classifier has been trained."""
        return self._classifier is not None

    @property
    def store(self) -> object | None:
        """The attached :class:`PairFeatureStore`, if any."""
        return self._store

    def attach_store(self, store) -> None:
        """Share a precomputed :class:`PairFeatureStore`.

        While attached, ``fit``/``score_pairs`` on the store's dataset
        take column slices of the shared full feature matrix instead of
        assembling per-config matrices; other datasets fall back to the
        direct path.  Pass ``None`` to detach.
        """
        self._store = store

    def with_store(self, store) -> "LeapmeMatcher":
        """A shallow clone of this matcher bound to ``store``.

        The copy-on-swap companion of
        :meth:`PairFeatureStore.with_source`: the clone shares the
        trained classifier, embeddings and staged pipeline (all
        read-only at scoring time) but reads features from ``store``,
        so the serve layer can build a successor matcher beside the
        live one and swap it in while in-flight requests keep scoring
        against the old store.
        """
        clone = copy.copy(self)
        clone._store = store
        clone._table = store.table
        clone._table_key = store.dataset_fingerprint
        return clone

    def build_feature_store(self, dataset: Dataset, universe=None):
        """Build a :class:`PairFeatureStore` with this matcher's embeddings.

        The store's universe enumerates candidates under this matcher's
        :attr:`candidate_policy` (embedding-bucket policies resolve
        against the matcher's own embeddings); pass a prebuilt
        ``universe`` to share one across matchers instead.
        """
        from repro.core.feature_cache import PairFeatureStore, PairUniverse

        if universe is None:
            universe = PairUniverse(
                dataset, self.candidate_policy, embeddings=self.embeddings
            )
        return PairFeatureStore(self._ensure_table(dataset), universe)

    def _ensure_table(self, dataset: Dataset) -> PropertyFeatureTable:
        # Keyed on the content fingerprint, not the bare name: two
        # different datasets that happen to share a name must not reuse
        # each other's cached feature table.
        if self._table is None or self._table_key != dataset.fingerprint():
            self._table = PropertyFeatureTable(
                dataset, self.embeddings, pipeline=self.pipeline
            )
            self._table_key = self._table.dataset_fingerprint
        return self._table

    def _features(self, dataset: Dataset, pairs: list[LabeledPair]) -> np.ndarray:
        started = perf_counter()
        try:
            if self._store is not None and self._store.serves(dataset):
                return self._store.features(pairs, self.feature_config)
            table = self._ensure_table(dataset)
            return pair_feature_matrix(table, pairs, self.feature_config)
        finally:
            self.feature_seconds += perf_counter() - started

    def fit(self, dataset: Dataset, training_pairs: PairSet) -> None:
        """Train the classifier on labelled pairs (Algorithm 1 step 5)."""
        features = self._features(dataset, training_pairs.pairs)
        labels = training_pairs.labels()
        self._classifier = self._classifier_factory()
        self._classifier.fit(features, labels)
        self.last_degradation = getattr(self._classifier, "degradation", None)

    def score_pairs(self, dataset: Dataset, pairs: list[LabeledPair]) -> np.ndarray:
        """Positive-class probabilities for candidate pairs."""
        if self._classifier is None:
            raise NotFittedError("LeapmeMatcher must be fitted before scoring")
        features = self._features(dataset, pairs)
        return self._classifier.match_scores(features)

    def predict(
        self, dataset: Dataset, pairs: list[LabeledPair]
    ) -> np.ndarray:
        """Boolean match decisions at the configured decision threshold."""
        return self.score_pairs(dataset, pairs) >= self.threshold

    def add_source(self, addition: Dataset) -> PairSet:
        """Incrementally ingest a new source through the attached store.

        Delegates to :meth:`PairFeatureStore.add_source` (only the new
        properties and new cross-source pairs are featurized) and
        returns the new pairs, ready for :meth:`predict` against the
        store's merged dataset.
        """
        if self._store is None:
            raise ConfigurationError(
                "attach a feature store (build_feature_store + attach_store) "
                "before adding sources incrementally"
            )
        return self._store.add_source(addition)

    @property
    def classifier(self) -> LeapmeClassifier:
        """The trained classifier (raises before :meth:`fit`)."""
        if self._classifier is None:
            raise NotFittedError("LeapmeMatcher is not fitted")
        return self._classifier
