"""Pair features: ``ppFeatures`` of Algorithm 1 (Table I rows 7-15).

For each pair of properties the classifier receives, depending on the
active :class:`~repro.core.config.FeatureConfig`:

* the element-wise difference of the two property feature vectors
  (row 7), restricted to the blocks the config enables -- instance
  meta-features, instance embeddings, name embeddings;
* the eight string distances between the property names (rows 8-15),
  the names/non-embedding block.

We use the *absolute* difference: Table I says "the difference between
the features vectors", and a signed difference would make the feature
vector depend on pair orientation, which the unordered matching task
cannot justify (the original implementation trains on randomly oriented
pairs, which asks the network to learn the same symmetry from data).

The full feature matrix has a fixed column order -- instance meta,
instance embedding, name embedding, name distances -- described by
:class:`FeatureLayout`.  Because every :class:`FeatureConfig` selects a
subset of whole blocks in that order, a config's feature matrix is a
column range of the full matrix (contiguous for eight of the nine grid
cells), which is what lets :class:`repro.core.feature_cache.PairFeatureStore`
serve configs as views of one shared matrix.

Name distances are memoised on the (unordered, lowercased) name pair:
benchmark sweeps re-score the same pairs under many feature
configurations and splits, and the edit distances dominate the runtime
otherwise.  Cache misses are computed through the batched kernel in
:mod:`repro.text.batch` rather than one pair at a time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import FeatureConfig
from repro.core.instance_features import NUM_META_FEATURES
from repro.core.property_features import PropertyFeatureTable
from repro.data.model import PropertyRef
from repro.data.pairs import LabeledPair
from repro.errors import ConfigurationError
from repro.text.batch import name_distance_matrix
from repro.text.similarity import PAIR_DISTANCE_NAMES, name_distance_vector

#: Number of name string-distance features (Table I rows 8-15).
NUM_NAME_DISTANCES = len(PAIR_DISTANCE_NAMES)

#: Memoised distance vectors keyed on the (lowercased, sorted) name pair.
#: A plain dict rather than ``lru_cache`` so the batched kernel can probe
#: for misses and insert whole batches of results.
_DISTANCE_CACHE: dict[tuple[str, str], np.ndarray] = {}


def _canonical_name_pair(a: str, b: str) -> tuple[str, str]:
    a = a.lower()
    b = b.lower()
    return (b, a) if a > b else (a, b)


def name_distances(a: str, b: str) -> np.ndarray:
    """Memoised, order-independent name distance vector."""
    key = _canonical_name_pair(a, b)
    cached = _DISTANCE_CACHE.get(key)
    if cached is None:
        cached = _DISTANCE_CACHE[key] = np.array(name_distance_vector(*key))
        cached.setflags(write=False)
    return cached


def name_distance_block(name_pairs: list[tuple[str, str]]) -> np.ndarray:
    """Distance vectors for many name pairs, ``(n_pairs, 8)``.

    Cache-aware: pairs already memoised are served from the cache and
    only the missing unique pairs go through the batched kernel.
    """
    n = len(name_pairs)
    block = np.empty((n, NUM_NAME_DISTANCES))
    missing: list[tuple[str, str]] = []
    missing_rows: list[int] = []
    seen_missing: dict[tuple[str, str], int] = {}
    gather: list[tuple[int, int]] = []  # (output row, missing index)
    for i, (a, b) in enumerate(name_pairs):
        key = _canonical_name_pair(a, b)
        cached = _DISTANCE_CACHE.get(key)
        if cached is not None:
            block[i] = cached
            continue
        slot = seen_missing.get(key)
        if slot is None:
            slot = seen_missing[key] = len(missing)
            missing.append(key)
            missing_rows.append(i)
        gather.append((i, slot))
    if missing:
        computed = name_distance_matrix(missing)
        for key, row in zip(missing, computed):
            entry = row.copy()
            entry.setflags(write=False)
            _DISTANCE_CACHE[key] = entry
        for out_row, slot in gather:
            block[out_row] = computed[slot]
    return block


@dataclass(frozen=True)
class FeatureBlock:
    """One column block of the full pair-feature matrix."""

    key: str
    start: int
    stop: int
    column_names: tuple[str, ...]

    @property
    def width(self) -> int:
        return self.stop - self.start

    @property
    def columns(self) -> slice:
        return slice(self.start, self.stop)


def _block_active(key: str, config: FeatureConfig) -> bool:
    if key == "instance_meta":
        return config.scope.uses_instances and config.kinds.uses_non_embeddings
    if key == "instance_embedding":
        return config.scope.uses_instances and config.kinds.uses_embeddings
    if key == "name_embedding":
        return config.scope.uses_names and config.kinds.uses_embeddings
    if key == "name_distances":
        return config.scope.uses_names and config.kinds.uses_non_embeddings
    raise ConfigurationError(f"unknown feature block {key!r}")


class FeatureLayout:
    """Column-block index of the full Table I pair-feature matrix.

    The single source of truth for column order and block widths; the
    previously hardcoded widths in ``feature_block_names`` and
    ``repro.core.importance`` both derive from it now.  Every
    :class:`FeatureConfig` selects whole blocks, so a config's matrix is
    ``full_matrix[:, layout.active_columns(config)]`` -- a zero-copy
    view whenever the active blocks are adjacent (all grid cells except
    ``both/non_embedding``, which skips the middle embedding blocks).
    """

    def __init__(self, dimension: int) -> None:
        self.dimension = dimension
        specs = [
            (
                "instance_meta",
                tuple(f"inst_meta_diff_{i}" for i in range(NUM_META_FEATURES)),
            ),
            (
                "instance_embedding",
                tuple(f"inst_emb_diff_{i}" for i in range(dimension)),
            ),
            (
                "name_embedding",
                tuple(f"name_emb_diff_{i}" for i in range(dimension)),
            ),
            (
                "name_distances",
                tuple(f"name_dist_{name}" for name in PAIR_DISTANCE_NAMES),
            ),
        ]
        blocks = []
        offset = 0
        for key, names in specs:
            blocks.append(FeatureBlock(key, offset, offset + len(names), names))
            offset += len(names)
        self.blocks: tuple[FeatureBlock, ...] = tuple(blocks)
        self.total_width = offset
        self._by_key = {block.key: block for block in self.blocks}

    def block(self, key: str) -> FeatureBlock:
        try:
            return self._by_key[key]
        except KeyError:
            raise ConfigurationError(f"unknown feature block {key!r}") from None

    def active_blocks(self, config: FeatureConfig) -> tuple[FeatureBlock, ...]:
        """The blocks a config enables, in matrix order."""
        active = tuple(
            block for block in self.blocks if _block_active(block.key, config)
        )
        if not active:
            raise ConfigurationError(
                f"feature config {config.label()} selects no features"
            )
        return active

    def active_columns(self, config: FeatureConfig) -> slice | np.ndarray:
        """Columns of the full matrix a config selects.

        Returns a :class:`slice` (so indexing yields a zero-copy view)
        when the active blocks are adjacent, otherwise an index array.
        """
        active = self.active_blocks(config)
        contiguous = all(
            nxt.start == prev.stop for prev, nxt in zip(active, active[1:])
        )
        if contiguous:
            return slice(active[0].start, active[-1].stop)
        return np.concatenate(
            [np.arange(block.start, block.stop) for block in active]
        )

    def active_slices(self, config: FeatureConfig) -> dict[str, slice]:
        """Per-block column ranges *within the config's own matrix*."""
        slices: dict[str, slice] = {}
        offset = 0
        for block in self.active_blocks(config):
            slices[block.key] = slice(offset, offset + block.width)
            offset += block.width
        return slices

    def column_names(self, config: FeatureConfig) -> list[str]:
        """Human-readable names of the active columns, in order."""
        names: list[str] = []
        for block in self.active_blocks(config):
            names.extend(block.column_names)
        return names

    def width(self, config: FeatureConfig) -> int:
        return sum(block.width for block in self.active_blocks(config))


def feature_block_names(config: FeatureConfig, dimension: int) -> list[str]:
    """Human-readable names of the active feature columns, in order."""
    return FeatureLayout(dimension).column_names(config)


def _split_pairs(
    pairs: list[LabeledPair] | list[tuple[PropertyRef, PropertyRef]],
) -> tuple[list[PropertyRef], list[PropertyRef]]:
    lefts: list[PropertyRef] = []
    rights: list[PropertyRef] = []
    for pair in pairs:
        if isinstance(pair, LabeledPair):
            lefts.append(pair.left)
            rights.append(pair.right)
        else:
            left, right = pair
            lefts.append(left)
            rights.append(right)
    return lefts, rights


def pair_feature_matrix(
    table: PropertyFeatureTable,
    pairs: list[LabeledPair] | list[tuple[PropertyRef, PropertyRef]],
    config: FeatureConfig,
) -> np.ndarray:
    """Assemble the pair feature matrix ``(n_pairs, n_features)``.

    ``pairs`` may be :class:`LabeledPair` objects or plain
    ``(left, right)`` tuples.
    """
    layout = FeatureLayout(table.embedding_dimension)
    active = layout.active_blocks(config)
    lefts, rights = _split_pairs(pairs)
    n = len(lefts)
    if n == 0:
        return np.zeros((0, layout.width(config)))
    left_rows = table.rows_of(lefts)
    right_rows = table.rows_of(rights)
    blocks: list[np.ndarray] = []
    for block in active:
        if block.key == "instance_meta":
            blocks.append(np.abs(table.meta[left_rows] - table.meta[right_rows]))
        elif block.key == "instance_embedding":
            blocks.append(
                np.abs(
                    table.value_embedding[left_rows]
                    - table.value_embedding[right_rows]
                )
            )
        elif block.key == "name_embedding":
            blocks.append(
                np.abs(
                    table.name_embedding[left_rows]
                    - table.name_embedding[right_rows]
                )
            )
        else:  # name_distances
            blocks.append(
                name_distance_block(
                    [
                        (left.name, right.name)
                        for left, right in zip(lefts, rights)
                    ]
                )
            )
    return np.hstack(blocks)
