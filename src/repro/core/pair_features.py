"""Pair features: ``ppFeatures`` of Algorithm 1 (Table I rows 7-15).

For each pair of properties the classifier receives, depending on the
active :class:`~repro.core.config.FeatureConfig`:

* the element-wise difference of the two property feature vectors
  (row 7), restricted to the blocks the config enables -- instance
  meta-features, instance embeddings, name embeddings;
* the eight string distances between the property names (rows 8-15),
  the names/non-embedding block.

We use the *absolute* difference: Table I says "the difference between
the features vectors", and a signed difference would make the feature
vector depend on pair orientation, which the unordered matching task
cannot justify (the original implementation trains on randomly oriented
pairs, which asks the network to learn the same symmetry from data).

The eight name distances are memoised on the (unordered) name pair:
benchmark sweeps re-score the same pairs under many feature
configurations and splits, and the edit distances dominate the runtime
otherwise.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.core.config import FeatureConfig
from repro.core.property_features import PropertyFeatureTable
from repro.data.model import PropertyRef
from repro.data.pairs import LabeledPair
from repro.errors import ConfigurationError
from repro.text.similarity import PAIR_DISTANCE_NAMES, name_distance_vector

#: Number of name string-distance features (Table I rows 8-15).
NUM_NAME_DISTANCES = len(PAIR_DISTANCE_NAMES)


@lru_cache(maxsize=1 << 20)
def _cached_name_distances(a: str, b: str) -> tuple[float, ...]:
    return tuple(name_distance_vector(a, b))


def name_distances(a: str, b: str) -> np.ndarray:
    """Memoised, order-independent name distance vector."""
    if a > b:
        a, b = b, a
    return np.array(_cached_name_distances(a, b))


def feature_block_names(config: FeatureConfig, dimension: int) -> list[str]:
    """Human-readable names of the active feature columns, in order."""
    names: list[str] = []
    if config.scope.uses_instances and config.kinds.uses_non_embeddings:
        names.extend(f"inst_meta_diff_{i}" for i in range(29))
    if config.scope.uses_instances and config.kinds.uses_embeddings:
        names.extend(f"inst_emb_diff_{i}" for i in range(dimension))
    if config.scope.uses_names and config.kinds.uses_embeddings:
        names.extend(f"name_emb_diff_{i}" for i in range(dimension))
    if config.scope.uses_names and config.kinds.uses_non_embeddings:
        names.extend(f"name_dist_{name}" for name in PAIR_DISTANCE_NAMES)
    return names


def pair_feature_matrix(
    table: PropertyFeatureTable,
    pairs: list[LabeledPair] | list[tuple[PropertyRef, PropertyRef]],
    config: FeatureConfig,
) -> np.ndarray:
    """Assemble the pair feature matrix ``(n_pairs, n_features)``.

    ``pairs`` may be :class:`LabeledPair` objects or plain
    ``(left, right)`` tuples.
    """
    lefts: list[PropertyRef] = []
    rights: list[PropertyRef] = []
    for pair in pairs:
        if isinstance(pair, LabeledPair):
            lefts.append(pair.left)
            rights.append(pair.right)
        else:
            left, right = pair
            lefts.append(left)
            rights.append(right)
    n = len(lefts)
    blocks: list[np.ndarray] = []
    if n == 0:
        width = len(feature_block_names(config, table.embedding_dimension))
        return np.zeros((0, width))
    left_rows = table.rows_of(lefts)
    right_rows = table.rows_of(rights)
    if config.scope.uses_instances and config.kinds.uses_non_embeddings:
        blocks.append(np.abs(table.meta[left_rows] - table.meta[right_rows]))
    if config.scope.uses_instances and config.kinds.uses_embeddings:
        blocks.append(
            np.abs(table.value_embedding[left_rows] - table.value_embedding[right_rows])
        )
    if config.scope.uses_names and config.kinds.uses_embeddings:
        blocks.append(
            np.abs(table.name_embedding[left_rows] - table.name_embedding[right_rows])
        )
    if config.scope.uses_names and config.kinds.uses_non_embeddings:
        distances = np.empty((n, NUM_NAME_DISTANCES))
        for i, (left, right) in enumerate(zip(lefts, rights)):
            distances[i] = name_distances(left.name, right.name)
        blocks.append(distances)
    if not blocks:
        raise ConfigurationError(f"feature config {config.label()} selects no features")
    return np.hstack(blocks)
