"""Pair features: ``ppFeatures`` of Algorithm 1 (Table I rows 7-15).

For each pair of properties the classifier receives, depending on the
active :class:`~repro.core.config.FeatureConfig`:

* the element-wise difference of the two property feature vectors
  (row 7), restricted to the blocks the config enables -- instance
  meta-features, instance embeddings, name embeddings;
* the eight string distances between the property names (rows 8-15),
  the names/non-embedding block.

We use the *absolute* difference: Table I says "the difference between
the features vectors", and a signed difference would make the feature
vector depend on pair orientation, which the unordered matching task
cannot justify (the original implementation trains on randomly oriented
pairs, which asks the network to learn the same symmetry from data).

Assembly is delegated to the staged pipeline in
:mod:`repro.core.pipeline`: the column geometry lives in
:class:`~repro.core.pipeline.FeatureSchema` (the single source of
truth, shared with the feature store, permutation importance and
persisted bundles) and matrices come out as float32.  The memoised
name-distance kernel (:func:`name_distances`,
:func:`name_distance_block`) also lives there and is re-exported here
for its historical callers.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import FeatureConfig
from repro.core.pipeline import (
    NUM_NAME_DISTANCES,
    FeatureSchema,
    name_distance_block,
    name_distances,
)
from repro.core.property_features import PropertyFeatureTable
from repro.data.model import PropertyRef
from repro.data.pairs import LabeledPair

__all__ = [
    "NUM_NAME_DISTANCES",
    "FeatureSchema",
    "name_distances",
    "name_distance_block",
    "feature_block_names",
    "pair_feature_matrix",
]


def feature_block_names(config: FeatureConfig, dimension: int) -> list[str]:
    """Human-readable names of the active feature columns, in order."""
    return FeatureSchema(dimension).column_names(config)


def pair_feature_matrix(
    table: PropertyFeatureTable,
    pairs: list[LabeledPair] | list[tuple[PropertyRef, PropertyRef]],
    config: FeatureConfig,
) -> np.ndarray:
    """Assemble the pair feature matrix ``(n_pairs, n_features)``.

    ``pairs`` may be :class:`LabeledPair` objects or plain
    ``(left, right)`` tuples.  The matrix is float32
    (:data:`~repro.core.pipeline.FEATURE_DTYPE`), assembled from the
    table's cached columnar stage outputs.
    """
    return table.pipeline.pair_matrix(table, pairs, config)
