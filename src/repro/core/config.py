"""Configuration objects for LEAPME.

:class:`FeatureConfig` selects which of Table I's feature blocks the
classifier sees; its 3 x 3 grid of (scope, kinds) combinations is exactly
the nine configurations analysed in Section V-A of the paper.
:class:`LeapmeConfig` carries the network hyper-parameters of Section IV-D.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ConfigurationError
from repro.nn.schedule import TrainingSchedule, paper_schedule


class FeatureScope(str, Enum):
    """Which inputs the features are computed from."""

    INSTANCES = "instances"
    NAMES = "names"
    BOTH = "both"

    @property
    def uses_instances(self) -> bool:
        return self in (FeatureScope.INSTANCES, FeatureScope.BOTH)

    @property
    def uses_names(self) -> bool:
        return self in (FeatureScope.NAMES, FeatureScope.BOTH)


class FeatureKinds(str, Enum):
    """Whether embedding features, classic features or both are used."""

    EMBEDDING = "embedding"
    NON_EMBEDDING = "non_embedding"
    BOTH = "both"

    @property
    def uses_embeddings(self) -> bool:
        return self in (FeatureKinds.EMBEDDING, FeatureKinds.BOTH)

    @property
    def uses_non_embeddings(self) -> bool:
        return self in (FeatureKinds.NON_EMBEDDING, FeatureKinds.BOTH)


@dataclass(frozen=True)
class FeatureConfig:
    """One cell of the paper's 3 x 3 feature-configuration grid.

    The paper's headline systems are:

    * ``FeatureConfig()`` -- full LEAPME (both scopes, both kinds);
    * ``FeatureConfig(kinds=FeatureKinds.EMBEDDING)`` -- LEAPME(emb);
    * ``FeatureConfig(kinds=FeatureKinds.NON_EMBEDDING)`` -- LEAPME(-emb).
    """

    scope: FeatureScope = FeatureScope.BOTH
    kinds: FeatureKinds = FeatureKinds.BOTH

    def label(self) -> str:
        """Short display label, e.g. ``names/embedding``."""
        return f"{self.scope.value}/{self.kinds.value}"

    @classmethod
    def from_label(cls, label: str) -> "FeatureConfig":
        """Parse a ``scope/kinds`` label back into a config (CLI input)."""
        scope_value, separator, kinds_value = label.partition("/")
        if not separator:
            raise ConfigurationError(
                f"feature config label must look like 'scope/kinds', got {label!r}"
            )
        try:
            return cls(
                scope=FeatureScope(scope_value), kinds=FeatureKinds(kinds_value)
            )
        except ValueError:
            valid = ", ".join(config.label() for config in cls.grid())
            raise ConfigurationError(
                f"unknown feature config {label!r}; valid labels: {valid}"
            ) from None

    @classmethod
    def grid(cls) -> list["FeatureConfig"]:
        """All nine configurations, scopes outermost (the paper's layout)."""
        return [
            cls(scope=scope, kinds=kinds)
            for scope in (FeatureScope.INSTANCES, FeatureScope.NAMES, FeatureScope.BOTH)
            for kinds in (FeatureKinds.BOTH, FeatureKinds.EMBEDDING, FeatureKinds.NON_EMBEDDING)
        ]


@dataclass(frozen=True)
class LeapmeConfig:
    """Network and training hyper-parameters (Section IV-D defaults).

    "two fully connected hidden layers of sizes 128 and 64 ... batch size
    of 32 and perform 10 epochs with learning rate 1e-3, 5 with 1e-4, and
    5 with 1e-5."
    """

    hidden_sizes: tuple[int, ...] = (128, 64)
    batch_size: int = 32
    schedule: TrainingSchedule = field(default_factory=paper_schedule)
    negative_ratio: float = 2.0
    #: Positive-class probability above which a pair counts as a match.
    decision_threshold: float = 0.5
    #: Standardise features before training.  Embedding components are
    #: already bounded, but the meta-feature counts are not; scaling keeps
    #: the network's inputs on comparable ranges.
    scale_features: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.hidden_sizes:
            raise ConfigurationError("need at least one hidden layer")
        if any(size < 1 for size in self.hidden_sizes):
            raise ConfigurationError("hidden sizes must be positive")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if self.negative_ratio < 0:
            raise ConfigurationError("negative_ratio must be >= 0")
        if not 0.0 < self.decision_threshold < 1.0:
            raise ConfigurationError("decision_threshold must be in (0, 1)")
