"""Per-source property-naming conventions.

Real sources differ systematically in how they spell attribute names:
one site writes ``"Camera Resolution"``, another ``"effective_pixels"``,
a third ``"MEGAPIXEL"``.  A :class:`NamingStyle` captures one source's
convention (case + separator + decoration); applying different styles to
different synonym variants produces the heterogeneity of Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# No empty separator: concatenating words without a boundary ("speakerunit")
# destroys word identity for *every* matcher, which real spec tables avoid.
_SEPARATORS = (" ", "_", "-")
_CASES = ("lower", "title", "upper", "original")
_DECORATIONS = ("", "spec", "info", "detail")


@dataclass(frozen=True)
class NamingStyle:
    """One source's convention for rendering property names."""

    case: str
    separator: str
    decoration: str

    def render(self, phrase: str, decorate: bool = False) -> str:
        """Render a multi-word phrase under this style.

        >>> NamingStyle("upper", "_", "spec").render("camera resolution")
        'CAMERA_RESOLUTION'
        """
        tokens = phrase.split()
        if decorate and self.decoration:
            tokens = tokens + [self.decoration]
        if self.case == "lower":
            tokens = [token.lower() for token in tokens]
        elif self.case == "upper":
            tokens = [token.upper() for token in tokens]
        elif self.case == "title":
            tokens = [token.capitalize() for token in tokens]
        return self.separator.join(tokens)

    @classmethod
    def random(cls, rng: np.random.Generator) -> "NamingStyle":
        """Draw a style uniformly over the convention space."""
        return cls(
            case=_CASES[rng.integers(len(_CASES))],
            separator=_SEPARATORS[rng.integers(len(_SEPARATORS))],
            decoration=_DECORATIONS[rng.integers(len(_DECORATIONS))],
        )


def choose_variant(variants: tuple[str, ...], rng: np.random.Generator) -> str:
    """Pick the synonym phrase a source uses for one reference property.

    The choice is geometrically skewed towards the first (canonical)
    variant: in real spec tables most sites call megapixels "resolution"
    and only a minority write "effective pixels".  The skew controls how
    often two sources share a name -- i.e. how much recall pure string
    similarity can reach.
    """
    weights = np.array([0.45**i for i in range(len(variants))])
    weights /= weights.sum()
    return variants[int(rng.choice(len(variants), p=weights))]
