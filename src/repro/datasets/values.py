"""Value generation: latent entity values and per-source rendering.

The generator separates *what is true* about a product (latent values,
shared by every source describing that latent product) from *how a source
writes it down* (unit spelling, decimal format, synonym choice, typos).
This mirrors the real integration problem: matching properties carry the
same underlying information in different surface forms.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.specs import (
    CodeValueSpec,
    EnumValueSpec,
    FreeTextValueSpec,
    NumericValueSpec,
    ValueSpec,
)
from repro.errors import ConfigurationError


def latent_value(spec: ValueSpec, rng: np.random.Generator) -> object:
    """Draw the latent (source-independent) value for one entity.

    The latent value is an index, a float or a string depending on the
    spec; rendering interprets it.
    """
    if isinstance(spec, NumericValueSpec):
        return float(rng.uniform(spec.low, spec.high))
    if isinstance(spec, EnumValueSpec):
        return int(rng.integers(len(spec.options)))
    if isinstance(spec, CodeValueSpec):
        prefix = spec.prefixes[int(rng.integers(len(spec.prefixes)))]
        number = "".join(str(rng.integers(10)) for _ in range(spec.digits))
        return f"{prefix}-{number}"
    if isinstance(spec, FreeTextValueSpec):
        count = int(rng.integers(spec.min_words, spec.max_words + 1))
        picks = rng.choice(len(spec.vocabulary), size=count, replace=True)
        return " ".join(spec.vocabulary[int(i)] for i in picks)
    raise ConfigurationError(f"unknown value spec type: {type(spec).__name__}")


def render_value(
    spec: ValueSpec,
    latent: object,
    rng: np.random.Generator,
    noise: float = 0.0,
) -> str:
    """Render a latent value the way one particular source would print it."""
    if isinstance(spec, NumericValueSpec):
        text = _render_numeric(spec, float(latent), rng)
    elif isinstance(spec, EnumValueSpec):
        group = spec.options[int(latent)]
        text = group[int(rng.integers(len(group)))]
    elif isinstance(spec, CodeValueSpec):
        text = str(latent)
    elif isinstance(spec, FreeTextValueSpec):
        text = str(latent)
    else:
        raise ConfigurationError(f"unknown value spec type: {type(spec).__name__}")
    if noise > 0.0 and rng.random() < noise:
        text = _corrupt(text, rng)
    return text


def _render_numeric(
    spec: NumericValueSpec, value: float, rng: np.random.Generator
) -> str:
    decimals = int(rng.integers(0, spec.decimals + 1)) if spec.decimals else 0
    number = f"{value:.{decimals}f}"
    if rng.random() < 0.15:
        number = number.replace(".", ",")  # European decimal comma
    if spec.units and rng.random() < spec.unit_probability:
        unit = spec.units[int(rng.integers(len(spec.units)))]
        layout = rng.random()
        if layout < 0.5:
            return f"{number} {unit}"
        if layout < 0.8:
            return f"{number}{unit}"
        return f"{unit} {number}"
    return number


def _corrupt(text: str, rng: np.random.Generator) -> str:
    """Apply one realistic corruption: typo, truncation or case flip."""
    if not text:
        return text
    mode = rng.random()
    position = int(rng.integers(len(text)))
    if mode < 0.4 and len(text) > 2:
        # Delete one character.
        return text[:position] + text[position + 1 :]
    if mode < 0.7:
        # Duplicate one character.
        return text[: position + 1] + text[position:]
    # Flip the case of one character.
    char = text[position]
    flipped = char.lower() if char.isupper() else char.upper()
    return text[:position] + flipped + text[position + 1 :]
