"""Turn a :class:`DomainSpec` into a concrete multi-source dataset.

Generation model
----------------

1. A **latent catalogue** of products is drawn for the domain; each latent
   product has a latent value for every reference property (shared truth).
2. Every **source** samples a subset of the catalogue (sources overlap,
   as real shops selling the same products do), chooses which reference
   properties it exposes, picks its own synonym phrase and naming style
   for each, and renders each latent value in its own format.
3. Sources additionally carry **junk properties** unaligned to the
   reference ontology; their names are source-specific so they create
   realistic non-matching clutter rather than accidental matches.
4. The ground-truth alignment maps every rendered property to its
   reference property.

A :class:`SynonymLexicon` is derived from the spec: words that are
distinctive of a single reference property's name variants form a synonym
group, as do unit spellings and enum-option spellings.  The lexicon feeds
the embedding substrate only -- matchers never see it.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

import numpy as np

from repro.data.model import Dataset, PropertyInstance, PropertyRef
from repro.datasets.naming import NamingStyle, choose_variant
from repro.datasets.specs import (
    CodeValueSpec,
    DomainSpec,
    EnumValueSpec,
    FreeTextValueSpec,
    NumericValueSpec,
    ReferencePropertySpec,
)
from repro.datasets.values import latent_value, render_value
from repro.embeddings.lexicon import SynonymLexicon
from repro.errors import ConfigurationError
from repro.text.tokenize import words

_JUNK_WORDS = (
    "internal", "aux", "legacy", "extra", "misc", "meta", "raw", "tmp",
    "field", "attr", "col", "code", "ref", "tag", "flag", "key",
)


@dataclass(frozen=True)
class GenerationConfig:
    """Knobs applied on top of a :class:`DomainSpec` at generation time."""

    seed: int = 0
    #: Multiplies the spec's entity counts; lets benchmarks scale a domain
    #: up to paper size or down for fast CI runs without editing specs.
    entity_scale: float = 1.0
    #: Latent catalogue size relative to the largest per-source count.
    catalogue_factor: float = 1.5

    def __post_init__(self) -> None:
        if self.entity_scale <= 0:
            raise ConfigurationError("entity_scale must be positive")
        if self.catalogue_factor < 1.0:
            raise ConfigurationError("catalogue_factor must be >= 1")


@dataclass(frozen=True)
class DomainSemantics:
    """Everything the embedding substrate needs to know about a domain.

    ``lexicon`` holds the synonym groups; ``soft_words`` maps ambiguous
    words (shared by several reference properties, e.g. "resolution") to
    the ids of their related groups; ``singletons`` lists every other
    surface word (junk tokens, decorations, enum brands, free-text
    vocabulary) that should receive a distinctive stand-alone vector.
    """

    lexicon: SynonymLexicon
    soft_words: dict[str, tuple[int, ...]]
    singletons: tuple[str, ...]


def _property_word_sets(spec: DomainSpec) -> list[set[str]]:
    """Name-variant + unit words per reference property."""
    per_property: list[set[str]] = []
    for prop in spec.properties:
        prop_words: set[str] = set()
        for variant in prop.name_variants:
            prop_words.update(words(variant))
        value_spec = prop.value_spec
        if isinstance(value_spec, NumericValueSpec):
            for unit in value_spec.units:
                prop_words.update(words(unit))
        per_property.append(prop_words)
    return per_property


def _candidate_groups(spec: DomainSpec) -> list[set[str]]:
    """Raw synonym-group candidates before transitive merging."""
    candidate_groups: list[set[str]] = []
    # (a) name-variant words, grouped per reference property; words shared
    # by several properties are ambiguous and excluded here (they become
    # soft words instead).
    word_owners: Counter[str] = Counter()
    per_property_words: list[set[str]] = []
    for prop in spec.properties:
        prop_words: set[str] = set()
        for variant in prop.name_variants:
            prop_words.update(words(variant))
        per_property_words.append(prop_words)
        for word in prop_words:
            word_owners[word] += 1
    for prop_words in per_property_words:
        distinctive = {w for w in prop_words if word_owners[w] == 1}
        if len(distinctive) >= 2:
            candidate_groups.append(distinctive)
    # (b) unit-spelling groups and (c) enum-option groups, split to words
    # because embedding lookups average per word.
    for prop in spec.properties:
        value_spec = prop.value_spec
        if isinstance(value_spec, NumericValueSpec) and len(value_spec.units) >= 2:
            unit_words: set[str] = set()
            for unit in value_spec.units:
                unit_words.update(words(unit))
            if len(unit_words) >= 2:
                candidate_groups.append(unit_words)
        elif isinstance(value_spec, EnumValueSpec):
            for option in value_spec.options:
                option_words: set[str] = set()
                for member in option:
                    option_words.update(words(member))
                if len(option_words) >= 2:
                    candidate_groups.append(option_words)
    return candidate_groups


def derive_lexicon(spec: DomainSpec) -> SynonymLexicon:
    """Extract the domain's synonym groups from its reference ontology.

    Groups are formed from (a) the distinctive name-variant words of each
    reference property, (b) unit spellings of numeric specs and (c) enum
    option spellings.  Overlapping candidate groups are merged
    transitively: a unit spelling that also appears in a property's name
    variants ("mp" in "mp rating") bridges the two groups, exactly as
    distributional co-occurrence would.
    """
    merged: list[set[str]] = []
    for group in _candidate_groups(spec):
        group = set(group)
        absorbed: list[set[str]] = []
        for existing in merged:
            if existing & group:
                group |= existing
                absorbed.append(existing)
        for gone in absorbed:
            merged.remove(gone)
        merged.append(group)
    lexicon = SynonymLexicon()
    for group in merged:
        if len(group) >= 2:
            lexicon.add_group(group)
    return lexicon


def derive_semantics(spec: DomainSpec) -> DomainSemantics:
    """Classify every surface word of a domain for embedding training.

    Surface words come from four places: reference-property name variants,
    value vocabularies (units, enum options, free text), junk-property
    tokens and name decorations.  Each word is either a lexicon group
    member, a *soft word* (ambiguous across several properties, related
    to each of their groups) or a *singleton*.
    """
    from repro.datasets.naming import _DECORATIONS  # local to avoid cycle at import

    lexicon = derive_lexicon(spec)
    per_property_words = _property_word_sets(spec)
    # All surface words of the domain.
    surface: set[str] = set()
    for prop_words in per_property_words:
        surface.update(prop_words)
    for prop in spec.properties:
        value_spec = prop.value_spec
        if isinstance(value_spec, EnumValueSpec):
            for option in value_spec.options:
                for member in option:
                    surface.update(words(member))
        elif isinstance(value_spec, FreeTextValueSpec):
            for term in value_spec.vocabulary:
                surface.update(words(term))
        elif isinstance(value_spec, CodeValueSpec):
            for prefix in value_spec.prefixes:
                surface.update(words(prefix))
    surface.update(_JUNK_WORDS)
    surface.update(word for word in _DECORATIONS if word)
    surface.update(word.lower() for word in spec.extra_filler_words)
    # Soft words: ungrouped name words shared by properties that do have
    # grouped words -- related to each such property's group(s).
    soft_words: dict[str, tuple[int, ...]] = {}
    singletons: list[str] = []
    grouped = lexicon.vocabulary()
    property_groups: list[set[int]] = []
    for prop_words in per_property_words:
        group_ids = {
            lexicon.group_of(word)
            for word in prop_words
            if lexicon.group_of(word) is not None
        }
        property_groups.append({gid for gid in group_ids if gid is not None})
    for word in sorted(surface):
        if word in grouped:
            continue
        related: set[int] = set()
        for prop_words, group_ids in zip(per_property_words, property_groups):
            if word in prop_words:
                related |= group_ids
        if related:
            soft_words[word] = tuple(sorted(related))
        else:
            singletons.append(word)
    return DomainSemantics(
        lexicon=lexicon,
        soft_words=soft_words,
        singletons=tuple(singletons),
    )


def _entity_counts(spec: DomainSpec, config: GenerationConfig, rng: np.random.Generator) -> list[int]:
    """Per-source entity counts, scaled by the config."""
    counts: list[int] = []
    for _ in range(spec.n_sources):
        if isinstance(spec.entities_per_source, tuple):
            low, high = spec.entities_per_source
            base = int(rng.integers(low, high + 1))
        else:
            base = spec.entities_per_source
        counts.append(max(1, int(round(base * config.entity_scale))))
    return counts


def _render_names(
    spec: DomainSpec,
    exposed: list[ReferencePropertySpec],
    style: NamingStyle,
    rng: np.random.Generator,
) -> dict[str, str]:
    """Choose and render this source's name for each exposed property.

    Returns ``{reference_name: rendered_name}`` with uniqueness enforced.
    """
    rendered: dict[str, str] = {}
    used: set[str] = set()
    for prop in exposed:
        variant = choose_variant(prop.name_variants, rng)
        decorate = rng.random() < spec.name_noise
        name = style.render(variant, decorate=decorate)
        attempts = 0
        while name in used and attempts < 5:
            variant = choose_variant(prop.name_variants, rng)
            name = style.render(variant, decorate=True)
            attempts += 1
        if name in used:
            name = f"{name}{len(used)}"
        rendered[prop.reference_name] = name
        used.add(name)
    return rendered


_CONSONANTS = "bcdfghjklmnpqrstvwz"
_VOWELS = "aeiou"


def _pseudo_word(rng: np.random.Generator, syllables: int = 2) -> str:
    """A pronounceable nonsense token ("kelu", "dativo")."""
    parts = []
    for _ in range(syllables):
        parts.append(_CONSONANTS[int(rng.integers(len(_CONSONANTS)))])
        parts.append(_VOWELS[int(rng.integers(len(_VOWELS)))])
    return "".join(parts)


def _junk_properties(
    spec: DomainSpec, source_index: int, rng: np.random.Generator
) -> list[str]:
    """Source-specific unaligned property names.

    Each combines a generic junk word with a source-local pseudo-word:
    real scraped sources carry plenty of private, machine-generated
    attribute names, and -- crucially for the ground truth -- junk
    properties of different sources must not look identical, because
    identical unaligned properties would be semantically matching pairs
    that the alignment-based ground truth cannot label.
    """
    names: list[str] = []
    for j in range(spec.junk_properties_per_source):
        word = _JUNK_WORDS[int(rng.integers(len(_JUNK_WORDS)))]
        pseudo = _pseudo_word(rng)
        layout = rng.random()
        if layout < 0.4:
            name = f"{word}_{pseudo}_{source_index}{j}"
        elif layout < 0.7:
            name = f"{pseudo} {word}"
        else:
            name = f"{pseudo}{source_index}{j}"
        names.append(name)
    return names


def generate_dataset(
    spec: DomainSpec, config: GenerationConfig | None = None
) -> Dataset:
    """Generate the full multi-source dataset for a domain spec."""
    config = config if config is not None else GenerationConfig()
    # Seed derivation mixes the domain identity so different domains built
    # with the same config seed still differ.
    rng = np.random.default_rng([config.seed, len(spec.name), spec.n_sources])
    counts = _entity_counts(spec, config, rng)
    catalogue_size = max(2, int(round(max(counts) * config.catalogue_factor)))
    # Latent truth: catalogue x property -> latent value.
    latent: list[dict[str, object]] = []
    for _ in range(catalogue_size):
        values = {
            prop.reference_name: latent_value(prop.value_spec, rng)
            for prop in spec.properties
        }
        latent.append(values)

    instances: list[PropertyInstance] = []
    alignment: dict[PropertyRef, str] = {}
    spec_by_name = {prop.reference_name: prop for prop in spec.properties}
    for source_index in range(spec.n_sources):
        source = f"{spec.name}_src{source_index:02d}"
        style = NamingStyle.random(rng)
        # Which reference properties does this source expose?
        exposed = [p for p in spec.properties if rng.random() < p.exposure]
        if len(exposed) < 2:  # every real source describes several attributes
            extra = [p for p in spec.properties if p not in exposed]
            picks = rng.choice(len(extra), size=min(2, len(extra)), replace=False)
            exposed.extend(extra[int(i)] for i in np.atleast_1d(picks))
        rendered = _render_names(spec, exposed, style, rng)
        junk_names = _junk_properties(spec, source_index, rng)
        # Which latent products does this source list?
        n_entities = min(counts[source_index], catalogue_size)
        product_ids = rng.choice(catalogue_size, size=n_entities, replace=False)
        source_instances: dict[PropertyRef, list[PropertyInstance]] = defaultdict(list)
        for position, product_id in enumerate(product_ids):
            entity = f"{source}_e{position:03d}"
            for prop in exposed:
                if rng.random() >= spec.instances_per_property:
                    continue
                value = render_value(
                    spec_by_name[prop.reference_name].value_spec,
                    latent[int(product_id)][prop.reference_name],
                    rng,
                    noise=spec.value_noise,
                )
                ref = PropertyRef(source, rendered[prop.reference_name])
                source_instances[ref].append(
                    PropertyInstance(source, ref.name, entity, value)
                )
            for junk in junk_names:
                if rng.random() >= spec.instances_per_property * 0.5:
                    continue
                junk_value = f"{rng.integers(10_000)}"
                source_instances[PropertyRef(source, junk)].append(
                    PropertyInstance(source, junk, entity, junk_value)
                )
        # Record alignment only for properties that produced instances.
        for prop in exposed:
            ref = PropertyRef(source, rendered[prop.reference_name])
            if source_instances.get(ref):
                alignment[ref] = prop.reference_name
        for ref_instances in source_instances.values():
            instances.extend(ref_instances)
    return Dataset(name=spec.name, instances=instances, alignment=alignment)
