"""Reference ontologies for the four evaluation domains.

Each domain mirrors the corresponding dataset of the paper structurally:

* **cameras** -- the DI2KG'19 stand-in: 24 sources, balanced entity
  counts (the paper caps at 100 per source), the richest ontology.
* **headphones / phones / tvs** -- the WDC stand-ins: fewer sources,
  imbalanced entity counts, noisier values ("low-quality" datasets).

Name variants are chosen so that (a) matching properties frequently have
low string similarity ("megapixel" vs "effective pixels"), which starves
string-distance matchers of recall, and (b) a few *different* properties
share surface words ("screen resolution" vs "image resolution"), which
creates the false-positive traps that supervised matchers learn to avoid.
"""

from __future__ import annotations

from repro.datasets.specs import (
    CodeValueSpec,
    DomainSpec,
    EnumValueSpec,
    FreeTextValueSpec,
    NumericValueSpec,
    ReferencePropertySpec,
)

_YES_NO = EnumValueSpec(options=(("yes", "true", "y"), ("no", "false", "n")))

_COLORS = EnumValueSpec(
    options=(
        ("black", "graphite", "onyx"),
        ("white", "ivory"),
        ("silver", "grey", "gray"),
        ("blue", "navy"),
        ("red", "crimson"),
    )
)


def _prop(
    reference: str,
    variants: tuple[str, ...],
    value_spec,
    exposure: float = 0.7,
) -> ReferencePropertySpec:
    return ReferencePropertySpec(
        reference_name=reference,
        name_variants=variants,
        value_spec=value_spec,
        exposure=exposure,
    )


def cameras_spec() -> DomainSpec:
    """The large, balanced camera domain (DI2KG'19 stand-in)."""
    properties = (
        _prop(
            "resolution",
            ("camera resolution", "effective pixels", "megapixel", "mp rating"),
            NumericValueSpec(8.0, 61.0, decimals=1, units=("mp", "megapixels", "mpix")),
            exposure=0.9,
        ),
        _prop(
            "sensor_size",
            ("sensor size", "imager dimensions", "chip format"),
            EnumValueSpec(
                options=(
                    ("full frame", "35mm"),
                    ("aps-c", "crop sensor"),
                    ("micro four thirds", "mft"),
                    ("1 inch", "one inch"),
                )
            ),
            exposure=0.6,
        ),
        _prop(
            "iso_range",
            ("iso range", "sensitivity span", "light sensitivity"),
            NumericValueSpec(100, 409600, decimals=0, units=("iso",)),
            exposure=0.7,
        ),
        _prop(
            "shutter_speed",
            ("shutter speed", "exposure time", "max shutter"),
            NumericValueSpec(0.000125, 30.0, decimals=4, units=("s", "sec", "seconds")),
            exposure=0.75,
        ),
        _prop(
            "aperture",
            ("aperture", "f number", "lens opening"),
            NumericValueSpec(1.2, 22.0, decimals=1, units=("f",)),
            exposure=0.6,
        ),
        _prop(
            "optical_zoom",
            ("optical zoom", "zoom factor", "magnification"),
            NumericValueSpec(1.0, 125.0, decimals=1, units=("x",)),
            exposure=0.65,
        ),
        _prop(
            "focal_length",
            ("focal length", "lens reach"),
            NumericValueSpec(10.0, 600.0, decimals=0, units=("mm", "millimeters")),
            exposure=0.6,
        ),
        _prop(
            "screen_size",
            ("screen size", "display diagonal", "lcd size", "monitor inches"),
            NumericValueSpec(2.0, 3.5, decimals=1, units=("inch", "inches", "in")),
            exposure=0.7,
        ),
        # Deliberate trap: shares the word "resolution" with the
        # "resolution" property above but means the rear display.
        _prop(
            "screen_resolution",
            ("screen resolution", "display dots", "lcd dots"),
            NumericValueSpec(230_000, 2_360_000, decimals=0, units=("dots", "px")),
            exposure=0.5,
        ),
        _prop(
            "video",
            ("video resolution", "movie mode", "recording format"),
            EnumValueSpec(
                options=(
                    ("4k", "uhd", "2160p"),
                    ("full hd", "1080p"),
                    ("hd", "720p"),
                    ("8k", "4320p"),
                )
            ),
            exposure=0.8,
        ),
        _prop(
            "weight",
            ("weight", "body mass", "heft"),
            NumericValueSpec(200.0, 1800.0, decimals=0, units=("g", "grams", "gr")),
            exposure=0.8,
        ),
        _prop(
            "battery_life",
            ("battery life", "shots per charge", "cipa rating"),
            NumericValueSpec(200, 1500, decimals=0, units=("shots", "frames")),
            exposure=0.6,
        ),
        _prop(
            "wifi",
            ("wifi", "wireless connectivity", "wlan support"),
            _YES_NO,
            exposure=0.6,
        ),
        _prop(
            "viewfinder",
            ("viewfinder", "eye level finder", "evf type"),
            EnumValueSpec(
                options=(
                    ("electronic", "evf"),
                    ("optical", "ovf"),
                    ("hybrid",),
                    ("none", "absent"),
                )
            ),
            exposure=0.55,
        ),
        _prop(
            "storage",
            ("storage media", "memory card", "card slot"),
            EnumValueSpec(
                options=(
                    ("sd", "sdhc"),
                    ("cf", "compactflash"),
                    ("cfexpress", "xqd"),
                    ("microsd", "tf"),
                )
            ),
            exposure=0.6,
        ),
        _prop(
            "model",
            ("model", "product id", "item number"),
            CodeValueSpec(prefixes=("eos", "dsc", "dmc", "nx", "om"), digits=4),
            exposure=0.85,
        ),
        _prop(
            "brand",
            ("brand", "manufacturer", "maker"),
            EnumValueSpec(
                options=(
                    ("canon",),
                    ("nikon",),
                    ("sony",),
                    ("fujifilm", "fuji"),
                    ("panasonic", "lumix"),
                    ("olympus",),
                )
            ),
            exposure=0.9,
        ),
        _prop(
            "color",
            ("color", "colour", "finish"),
            _COLORS,
            exposure=0.5,
        ),
        _prop(
            "burst_rate",
            ("burst rate", "continuous shooting", "fps drive"),
            NumericValueSpec(2.0, 30.0, decimals=1, units=("fps", "frames per second")),
            exposure=0.55,
        ),
        _prop(
            "stabilization",
            ("image stabilization", "ibis", "shake reduction"),
            _YES_NO,
            exposure=0.55,
        ),
        _prop(
            "description",
            ("description", "overview", "about"),
            FreeTextValueSpec(
                vocabulary=(
                    "compact", "professional", "mirrorless", "dslr", "rugged",
                    "travel", "lightweight", "weathersealed", "classic",
                    "beginner", "vlogging", "studio",
                ),
            ),
            exposure=0.5,
        ),
    )
    return DomainSpec(
        name="cameras",
        properties=properties,
        n_sources=24,
        entities_per_source=100,
        junk_properties_per_source=2,
        name_noise=0.12,
        value_noise=0.03,
        instances_per_property=0.85,
    )


def headphones_spec() -> DomainSpec:
    """The small, imbalanced headphone domain (WDC stand-in)."""
    properties = (
        _prop(
            "driver_size",
            ("driver size", "transducer diameter", "speaker unit"),
            NumericValueSpec(6.0, 70.0, decimals=1, units=("mm", "millimeters")),
            exposure=0.7,
        ),
        _prop(
            "impedance",
            ("impedance", "resistance rating", "ohmic load"),
            NumericValueSpec(8.0, 600.0, decimals=0, units=("ohm", "ohms", "Ω")),
            exposure=0.75,
        ),
        _prop(
            "frequency_response",
            ("frequency response", "audio bandwidth", "hz range"),
            NumericValueSpec(5.0, 40000.0, decimals=0, units=("hz", "hertz", "khz")),
            exposure=0.7,
        ),
        _prop(
            "sensitivity",
            ("sensitivity", "sound pressure", "spl rating"),
            NumericValueSpec(85.0, 120.0, decimals=1, units=("db", "decibels")),
            exposure=0.65,
        ),
        _prop(
            "wireless",
            ("wireless", "bluetooth", "cordless"),
            _YES_NO,
            exposure=0.8,
        ),
        _prop(
            "noise_cancelling",
            ("noise cancelling", "anc", "active isolation"),
            _YES_NO,
            exposure=0.6,
        ),
        _prop(
            "battery_hours",
            ("battery hours", "playtime", "listening time"),
            NumericValueSpec(4.0, 80.0, decimals=0, units=("h", "hours", "hrs")),
            exposure=0.6,
        ),
        _prop(
            "weight",
            ("weight", "mass", "heft"),
            NumericValueSpec(4.0, 450.0, decimals=0, units=("g", "grams", "oz")),
            exposure=0.7,
        ),
        _prop(
            "form_factor",
            ("form factor", "wearing style", "fit type"),
            EnumValueSpec(
                options=(
                    ("over ear", "circumaural"),
                    ("on ear", "supraaural"),
                    ("in ear", "earbuds", "iem"),
                )
            ),
            exposure=0.7,
        ),
        _prop(
            "cable_length",
            ("cable length", "cord span", "wire reach"),
            NumericValueSpec(0.5, 5.0, decimals=1, units=("m", "meters", "metres")),
            exposure=0.45,
        ),
        _prop(
            "microphone",
            ("microphone", "mic", "voice capture"),
            _YES_NO,
            exposure=0.6,
        ),
        _prop(
            "model",
            ("model", "product code", "sku"),
            CodeValueSpec(prefixes=("wh", "qc", "hd", "ath", "momentum"), digits=4),
            exposure=0.8,
        ),
        _prop(
            "color",
            ("color", "colour", "shade"),
            _COLORS,
            exposure=0.6,
        ),
        _prop(
            "codec",
            ("codec support", "audio format", "streaming protocol"),
            EnumValueSpec(
                options=(
                    ("aptx",),
                    ("ldac",),
                    ("aac",),
                    ("sbc",),
                )
            ),
            exposure=0.5,
        ),
        _prop(
            "charging_port",
            ("charging port", "connector type", "plug kind"),
            EnumValueSpec(
                options=(
                    ("usb c", "type c"),
                    ("micro usb",),
                    ("lightning",),
                    ("pogo pins",),
                )
            ),
            exposure=0.5,
        ),
        _prop(
            "foldable",
            ("foldable", "collapsible", "folding design"),
            _YES_NO,
            exposure=0.5,
        ),
        _prop(
            "water_resistance",
            ("water resistance", "ip rating", "sweatproof grade"),
            EnumValueSpec(
                options=(
                    ("ipx4",),
                    ("ipx5",),
                    ("ipx7",),
                    ("none", "absent"),
                )
            ),
            exposure=0.45,
        ),
    )
    return DomainSpec(
        name="headphones",
        properties=properties,
        n_sources=10,
        entities_per_source=(5, 60),
        junk_properties_per_source=3,
        name_noise=0.3,
        value_noise=0.1,
        instances_per_property=0.65,
    )


def phones_spec() -> DomainSpec:
    """The phone domain (WDC stand-in)."""
    properties = (
        _prop(
            "screen_size",
            ("screen size", "display diagonal", "panel inches"),
            NumericValueSpec(4.0, 7.2, decimals=2, units=("inch", "inches", "in")),
            exposure=0.85,
        ),
        # Trap pair with screen_size via the word "display"/"screen".
        _prop(
            "screen_resolution",
            ("screen resolution", "display pixels", "panel dots"),
            NumericValueSpec(640.0, 3200.0, decimals=0, units=("px", "pixels")),
            exposure=0.7,
        ),
        _prop(
            "ram",
            ("ram", "memory size", "working storage"),
            NumericValueSpec(1.0, 24.0, decimals=0, units=("gb", "gigabytes")),
            exposure=0.8,
        ),
        _prop(
            "internal_storage",
            ("internal storage", "rom capacity", "flash space"),
            NumericValueSpec(8.0, 1024.0, decimals=0, units=("gb", "gigabytes", "tb")),
            exposure=0.8,
        ),
        _prop(
            "battery_capacity",
            ("battery capacity", "cell charge", "power reserve"),
            NumericValueSpec(1500.0, 6500.0, decimals=0, units=("mah", "milliamp hours")),
            exposure=0.8,
        ),
        _prop(
            "camera",
            ("camera", "rear shooter", "main lens megapixels"),
            NumericValueSpec(5.0, 200.0, decimals=0, units=("mp", "megapixels")),
            exposure=0.75,
        ),
        _prop(
            "os",
            ("operating system", "os", "platform software"),
            EnumValueSpec(
                options=(
                    ("android",),
                    ("ios", "iphone os"),
                    ("harmonyos",),
                    ("kaios",),
                )
            ),
            exposure=0.7,
        ),
        _prop(
            "cpu",
            ("processor", "chipset", "soc"),
            EnumValueSpec(
                options=(
                    ("snapdragon",),
                    ("exynos",),
                    ("dimensity", "mediatek"),
                    ("bionic", "apple silicon"),
                    ("kirin",),
                )
            ),
            exposure=0.65,
        ),
        _prop(
            "weight",
            ("weight", "mass", "heft"),
            NumericValueSpec(110.0, 260.0, decimals=0, units=("g", "grams")),
            exposure=0.7,
        ),
        _prop(
            "sim",
            ("sim type", "card slots", "subscriber module"),
            EnumValueSpec(
                options=(
                    ("single sim",),
                    ("dual sim", "dual standby"),
                    ("esim", "embedded sim"),
                )
            ),
            exposure=0.5,
        ),
        _prop(
            "network",
            ("network", "cellular generation", "mobile bands"),
            EnumValueSpec(
                options=(("5g",), ("4g", "lte"), ("3g", "umts"), ("2g", "gsm"))
            ),
            exposure=0.65,
        ),
        _prop(
            "nfc",
            ("nfc", "contactless", "near field"),
            _YES_NO,
            exposure=0.5,
        ),
        _prop(
            "model",
            ("model", "device code", "variant number"),
            CodeValueSpec(prefixes=("sm", "gt", "mi", "cph", "xt"), digits=4),
            exposure=0.85,
        ),
        _prop(
            "brand",
            ("brand", "manufacturer", "maker"),
            EnumValueSpec(
                options=(
                    ("samsung",),
                    ("apple",),
                    ("xiaomi",),
                    ("oppo",),
                    ("motorola", "moto"),
                    ("nokia",),
                )
            ),
            exposure=0.85,
        ),
        _prop(
            "color",
            ("color", "colour", "finish"),
            _COLORS,
            exposure=0.55,
        ),
    )
    return DomainSpec(
        name="phones",
        properties=properties,
        n_sources=10,
        entities_per_source=(8, 70),
        junk_properties_per_source=3,
        name_noise=0.2,
        value_noise=0.1,
        instances_per_property=0.65,
    )


def tvs_spec() -> DomainSpec:
    """The TV domain (WDC stand-in)."""
    properties = (
        _prop(
            "screen_size",
            ("screen size", "panel diagonal", "display inches"),
            NumericValueSpec(24.0, 98.0, decimals=0, units=("inch", "inches", "in")),
            exposure=0.9,
        ),
        _prop(
            "resolution",
            ("resolution", "pixel format", "native dots"),
            EnumValueSpec(
                options=(
                    ("4k", "uhd", "2160p"),
                    ("8k", "4320p"),
                    ("full hd", "1080p"),
                    ("hd ready", "720p"),
                )
            ),
            exposure=0.85,
        ),
        _prop(
            "panel_type",
            ("panel type", "screen technology", "display tech"),
            EnumValueSpec(
                options=(
                    ("oled",),
                    ("qled", "quantum dot"),
                    ("led", "lcd"),
                    ("miniled",),
                )
            ),
            exposure=0.7,
        ),
        _prop(
            "refresh_rate",
            ("refresh rate", "motion frequency", "panel speed"),
            NumericValueSpec(50.0, 240.0, decimals=0, units=("hz", "hertz")),
            exposure=0.7,
        ),
        _prop(
            "hdr",
            ("hdr", "high dynamic range", "dolby vision"),
            _YES_NO,
            exposure=0.6,
        ),
        _prop(
            "smart_platform",
            ("smart platform", "tv os", "software system"),
            EnumValueSpec(
                options=(
                    ("webos",),
                    ("tizen",),
                    ("android tv", "google tv"),
                    ("roku",),
                    ("firetv", "fire os"),
                )
            ),
            exposure=0.65,
        ),
        _prop(
            "hdmi_ports",
            ("hdmi ports", "video inputs", "connector count"),
            NumericValueSpec(1.0, 6.0, decimals=0, units=("ports",)),
            exposure=0.6,
        ),
        _prop(
            "power",
            ("power consumption", "energy draw", "wattage"),
            NumericValueSpec(30.0, 600.0, decimals=0, units=("w", "watts")),
            exposure=0.55,
        ),
        _prop(
            "weight",
            ("weight", "mass", "heft"),
            NumericValueSpec(3.0, 60.0, decimals=1, units=("kg", "kilograms", "lbs")),
            exposure=0.65,
        ),
        _prop(
            "speakers",
            ("speaker output", "audio power", "sound wattage"),
            NumericValueSpec(10.0, 80.0, decimals=0, units=("w", "watts")),
            exposure=0.5,
        ),
        _prop(
            "wifi",
            ("wifi", "wireless lan", "wlan"),
            _YES_NO,
            exposure=0.55,
        ),
        _prop(
            "model",
            ("model", "series code", "product number"),
            CodeValueSpec(prefixes=("qn", "un", "xr", "oled", "tcl"), digits=5),
            exposure=0.85,
        ),
        _prop(
            "brand",
            ("brand", "manufacturer", "maker"),
            EnumValueSpec(
                options=(
                    ("samsung",),
                    ("lg",),
                    ("sony", "bravia"),
                    ("tcl",),
                    ("hisense",),
                    ("philips",),
                )
            ),
            exposure=0.85,
        ),
        _prop(
            "release_year",
            ("release year", "launch date", "model year"),
            NumericValueSpec(2015.0, 2021.0, decimals=0),
            exposure=0.5,
        ),
        _prop(
            "vesa_mount",
            ("vesa mount", "wall bracket pattern", "mounting holes"),
            NumericValueSpec(75.0, 600.0, decimals=0, units=("mm", "millimeters")),
            exposure=0.45,
        ),
        _prop(
            "tuner",
            ("tuner type", "broadcast receiver", "aerial standard"),
            EnumValueSpec(
                options=(
                    ("dvb t2",),
                    ("atsc",),
                    ("isdb",),
                    ("analog", "ntsc"),
                )
            ),
            exposure=0.45,
        ),
        _prop(
            "curved",
            ("curved", "arc shape", "bent panel"),
            _YES_NO,
            exposure=0.45,
        ),
    )
    return DomainSpec(
        name="tvs",
        properties=properties,
        n_sources=10,
        entities_per_source=(4, 50),
        junk_properties_per_source=3,
        name_noise=0.32,
        value_noise=0.12,
        instances_per_property=0.6,
    )
