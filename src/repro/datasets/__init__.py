"""Synthetic multi-source product datasets (DI2KG / WDC substitutes).

The paper evaluates on four e-commerce datasets that are not shipped here
(DI2KG'19 cameras; WDC headphones/phones/tvs).  This package generates
structurally equivalent datasets:

* a **reference ontology** of properties per domain, each with several
  synonymous name variants ("camera resolution" / "effective pixels" /
  "megapixel") and a value model (numbers with units, enumerations,
  model codes, free text);
* every **source** exposes a subset of the reference properties, names
  them with its own convention (casing, separators, chosen synonym) and
  renders values in its own format;
* sources also carry **unaligned junk properties** that match nothing;
* the camera dataset is large and balanced (24 sources, capped entities);
  headphones/phones/tvs are small and imbalanced, mirroring what the
  paper calls the "low-quality" datasets.

Alongside each dataset the generator derives the :class:`SynonymLexicon`
that encodes which words are domain synonyms; the embedding substrate
turns that into trained word vectors (the GloVe substitute).  The matcher
never sees the lexicon itself.

Public entry points: :func:`load_dataset`, :func:`domain_lexicon`,
:func:`build_domain_embeddings`, :data:`DATASET_NAMES`.
"""

from repro.datasets.generator import GenerationConfig, generate_dataset
from repro.datasets.registry import (
    DATASET_NAMES,
    build_domain_embeddings,
    domain_lexicon,
    domain_spec,
    load_dataset,
)
from repro.datasets.specs import (
    CodeValueSpec,
    DomainSpec,
    EnumValueSpec,
    FreeTextValueSpec,
    NumericValueSpec,
    ReferencePropertySpec,
)

__all__ = [
    "DATASET_NAMES",
    "load_dataset",
    "domain_lexicon",
    "domain_spec",
    "build_domain_embeddings",
    "GenerationConfig",
    "generate_dataset",
    "DomainSpec",
    "ReferencePropertySpec",
    "NumericValueSpec",
    "EnumValueSpec",
    "CodeValueSpec",
    "FreeTextValueSpec",
]
