"""Dataset registry: named domains, scale presets, cached embeddings.

``load_dataset("cameras")`` is the public entry point mirroring how the
paper's evaluation loads its four datasets.  A *scale* preset controls how
large the generated data is:

* ``"tiny"``   -- a few sources, a dozen entities; for unit tests.
* ``"small"``  -- full source counts, reduced entities; the default for
  interactive use and the benchmark suite.
* ``"paper"``  -- the paper's dimensions (cameras: 24 sources x 100
  entities, 300-d embeddings).

:func:`build_domain_embeddings` trains the GloVe-substitute embeddings for
one or several domains (several = the transfer-learning setting, where a
single embedding space must cover both domains, exactly as a single
pre-trained GloVe does in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.data.model import Dataset
from repro.datasets.domains import cameras_spec, headphones_spec, phones_spec, tvs_spec
from repro.datasets.generator import (
    DomainSemantics,
    GenerationConfig,
    derive_lexicon,
    derive_semantics,
    generate_dataset,
)
from repro.datasets.specs import DomainSpec
from repro.embeddings.base import WordEmbeddings
from repro.embeddings.cooccurrence import build_cooccurrence
from repro.embeddings.corpus import CorpusGenerator
from repro.embeddings.glove_like import train_glove_like
from repro.embeddings.lexicon import SynonymLexicon
from repro.errors import ConfigurationError

_SPEC_BUILDERS = {
    "cameras": cameras_spec,
    "headphones": headphones_spec,
    "phones": phones_spec,
    "tvs": tvs_spec,
}

#: The four evaluation datasets of the paper, in its order.
DATASET_NAMES: tuple[str, ...] = ("cameras", "headphones", "phones", "tvs")


@dataclass(frozen=True)
class ScalePreset:
    """How a scale name maps to generation knobs."""

    source_cap: int | None
    entity_scale: float
    embedding_dimension: int


SCALES: dict[str, ScalePreset] = {
    "tiny": ScalePreset(source_cap=5, entity_scale=0.12, embedding_dimension=32),
    "small": ScalePreset(source_cap=None, entity_scale=0.3, embedding_dimension=64),
    "paper": ScalePreset(source_cap=None, entity_scale=1.0, embedding_dimension=300),
}


def _preset(scale: str) -> ScalePreset:
    try:
        return SCALES[scale]
    except KeyError:
        known = ", ".join(sorted(SCALES))
        raise ConfigurationError(f"unknown scale {scale!r}; known: {known}") from None


def domain_spec(name: str, scale: str = "small") -> DomainSpec:
    """The :class:`DomainSpec` for a dataset name, adjusted to a scale."""
    try:
        builder = _SPEC_BUILDERS[name]
    except KeyError:
        known = ", ".join(DATASET_NAMES)
        raise ConfigurationError(f"unknown dataset {name!r}; known: {known}") from None
    spec = builder()
    preset = _preset(scale)
    if preset.source_cap is not None and spec.n_sources > preset.source_cap:
        spec = replace(spec, n_sources=preset.source_cap)
    return spec


def load_dataset(name: str, scale: str = "small", seed: int = 0) -> Dataset:
    """Generate one of the four evaluation datasets.

    >>> dataset = load_dataset("cameras", scale="tiny")
    >>> len(dataset.sources())
    5
    """
    preset = _preset(scale)
    spec = domain_spec(name, scale)
    config = GenerationConfig(seed=seed, entity_scale=preset.entity_scale)
    return generate_dataset(spec, config)


def domain_lexicon(name: str, scale: str = "small") -> SynonymLexicon:
    """The synonym lexicon derived from a domain's reference ontology."""
    return derive_lexicon(domain_spec(name, scale))


def embedding_dimension(scale: str = "small") -> int:
    """The default embedding dimensionality for a scale preset."""
    return _preset(scale).embedding_dimension


_EMBEDDING_CACHE: dict[tuple, WordEmbeddings] = {}


def build_domain_embeddings(
    names: str | list[str],
    scale: str = "small",
    dimension: int | None = None,
    seed: int = 0,
    sentences_per_group: int = 25,
    contamination: float = 0.45,
    anisotropy: float = 0.25,
) -> WordEmbeddings:
    """Train the GloVe-substitute embeddings for one or several domains.

    Training is corpus -> co-occurrence -> PPMI+SVD (see
    :mod:`repro.embeddings`).  Passing several domain names merges their
    lexicons first, producing a single embedding space covering all of
    them -- required for the transfer-learning experiment.  Results are
    cached per argument combination, since benchmark sweeps reuse the
    same space across many repetitions.
    """
    if isinstance(names, str):
        names = [names]
    if not names:
        raise ConfigurationError("need at least one domain name")
    preset = _preset(scale)
    if dimension is None:
        dimension = preset.embedding_dimension
    key = (
        tuple(sorted(names)), scale, dimension, seed, sentences_per_group,
        contamination, anisotropy,
    )
    cached = _EMBEDDING_CACHE.get(key)
    if cached is not None:
        return cached
    # One corpus per domain, concatenated.  Context-pool namespaces keep
    # "group 0 of cameras" and "group 0 of phones" from sharing invented
    # context words; real words shared by two domains ("weight") simply
    # occur in both sub-corpora and end up related to both, as in GloVe.
    sentences: list[list[str]] = []
    for index, name in enumerate(names):
        semantics: DomainSemantics = derive_semantics(domain_spec(name, scale))
        generator = CorpusGenerator(
            semantics.lexicon,
            soft_words=semantics.soft_words,
            singletons=semantics.singletons,
            contamination=contamination,
            namespace=name,
            seed=seed + index,
        )
        sentences.extend(generator.sentences(sentences_per_group))
    counts = build_cooccurrence(sentences)
    embeddings = train_glove_like(
        counts, dimension=dimension, anisotropy=anisotropy, seed=seed
    )
    _EMBEDDING_CACHE[key] = embeddings
    return embeddings


def clear_embedding_cache() -> None:
    """Drop all cached embedding spaces (mainly for tests)."""
    _EMBEDDING_CACHE.clear()
