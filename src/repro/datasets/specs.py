"""Declarative specifications for synthetic product domains.

A :class:`DomainSpec` describes one product domain (cameras, phones, ...):
its reference properties, how heterogeneous the sources are, and how large
the generated dataset should be.  The generator in
:mod:`repro.datasets.generator` turns a spec into a concrete
:class:`~repro.data.model.Dataset`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class NumericValueSpec:
    """A numeric property: a latent number rendered with unit variants.

    ``units`` lists interchangeable unit spellings ("mp", "megapixels");
    members of the list form a synonym group for the lexicon.  An empty
    list renders bare numbers.
    """

    low: float
    high: float
    decimals: int = 1
    units: tuple[str, ...] = ()
    unit_probability: float = 0.8

    def __post_init__(self) -> None:
        if self.low >= self.high:
            raise ConfigurationError(f"need low < high, got [{self.low}, {self.high}]")
        if self.decimals < 0:
            raise ConfigurationError("decimals must be non-negative")
        if not 0.0 <= self.unit_probability <= 1.0:
            raise ConfigurationError("unit_probability must be in [0, 1]")


@dataclass(frozen=True)
class EnumValueSpec:
    """A categorical property.

    ``options`` is a list of synonym groups: the entity's latent value
    selects a group, the rendering source selects a spelling within it
    (e.g. ``("yes", "true", "y")``).
    """

    options: tuple[tuple[str, ...], ...]

    def __post_init__(self) -> None:
        if len(self.options) < 2:
            raise ConfigurationError("enum needs at least two options")
        for group in self.options:
            if not group:
                raise ConfigurationError("enum option group must not be empty")


@dataclass(frozen=True)
class CodeValueSpec:
    """An identifier-like property (model numbers, SKUs).

    The latent code is shared verbatim by every source describing the same
    latent product, which gives instance-based matchers (LSH) a strong,
    name-independent signal.
    """

    prefixes: tuple[str, ...]
    digits: int = 4

    def __post_init__(self) -> None:
        if not self.prefixes:
            raise ConfigurationError("code spec needs at least one prefix")
        if self.digits < 1:
            raise ConfigurationError("digits must be >= 1")


@dataclass(frozen=True)
class FreeTextValueSpec:
    """A free-text property: a few words drawn from a topic vocabulary."""

    vocabulary: tuple[str, ...]
    min_words: int = 2
    max_words: int = 6

    def __post_init__(self) -> None:
        if len(self.vocabulary) < 2:
            raise ConfigurationError("free-text vocabulary needs >= 2 words")
        if not 1 <= self.min_words <= self.max_words:
            raise ConfigurationError("need 1 <= min_words <= max_words")


ValueSpec = NumericValueSpec | EnumValueSpec | CodeValueSpec | FreeTextValueSpec


@dataclass(frozen=True)
class ReferencePropertySpec:
    """One property of the domain's reference ontology.

    ``name_variants`` are the synonymous phrases sources may use for this
    property.  Their *distinctive* words (words not shared with other
    reference properties) become a synonym group in the derived lexicon --
    the structure pre-trained embeddings would capture from the web.
    """

    reference_name: str
    name_variants: tuple[str, ...]
    value_spec: ValueSpec
    #: Probability that a given source exposes this property at all.
    exposure: float = 0.7

    def __post_init__(self) -> None:
        if not self.name_variants:
            raise ConfigurationError(
                f"property {self.reference_name!r} needs name variants"
            )
        if not 0.0 < self.exposure <= 1.0:
            raise ConfigurationError("exposure must be in (0, 1]")


@dataclass(frozen=True)
class DomainSpec:
    """A complete synthetic product domain.

    Parameters
    ----------
    name:
        Domain/dataset identifier.
    properties:
        The reference ontology.
    n_sources:
        How many sources to generate.
    entities_per_source:
        Either a fixed count (balanced, like the capped camera dataset) or
        an inclusive ``(min, max)`` range sampled per source (imbalanced,
        like the WDC datasets).
    junk_properties_per_source:
        Unaligned noise properties added to every source.
    name_noise:
        Probability that a rendered property name gains a decorative token
        (e.g. a "spec"/"info" suffix), lowering string similarity further.
    value_noise:
        Probability that a rendered value is corrupted (typo, truncation),
        weakening instance signals -- higher for "low-quality" datasets.
    instances_per_property:
        Expected fraction of a source's entities that actually populate a
        given exposed property (real product pages are sparse).
    """

    name: str
    properties: tuple[ReferencePropertySpec, ...]
    n_sources: int
    entities_per_source: int | tuple[int, int]
    junk_properties_per_source: int = 2
    name_noise: float = 0.15
    value_noise: float = 0.05
    instances_per_property: float = 0.8
    extra_filler_words: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.properties:
            raise ConfigurationError("domain needs at least one reference property")
        if self.n_sources < 2:
            raise ConfigurationError("domain needs at least two sources")
        if isinstance(self.entities_per_source, tuple):
            low, high = self.entities_per_source
            if not 1 <= low <= high:
                raise ConfigurationError("entity range must satisfy 1 <= min <= max")
        elif self.entities_per_source < 1:
            raise ConfigurationError("entities_per_source must be >= 1")
        if self.junk_properties_per_source < 0:
            raise ConfigurationError("junk_properties_per_source must be >= 0")
        for probability, label in (
            (self.name_noise, "name_noise"),
            (self.value_noise, "value_noise"),
            (self.instances_per_property, "instances_per_property"),
        ):
            if not 0.0 <= probability <= 1.0:
                raise ConfigurationError(f"{label} must be in [0, 1]")
        seen = set()
        for prop in self.properties:
            if prop.reference_name in seen:
                raise ConfigurationError(
                    f"duplicate reference property {prop.reference_name!r}"
                )
            seen.add(prop.reference_name)

    @property
    def is_balanced(self) -> bool:
        """True when every source holds the same number of entities."""
        return isinstance(self.entities_per_source, int)
