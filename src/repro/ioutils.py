"""Crash-safe filesystem helpers.

Every artifact the library writes (matcher bundles, dataset JSON, run
journals) goes through these helpers so that a process killed mid-write
never leaves a corrupt or half-written file behind: content is written
to a temporary sibling in the same directory and atomically swapped into
place with :func:`os.replace`.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from collections.abc import Callable, Iterator
from pathlib import Path


@contextlib.contextmanager
def atomic_path(path: str | Path, suffix: str = "") -> Iterator[Path]:
    """Yield a temporary path that replaces ``path`` on clean exit.

    The temporary file lives in the destination directory (so the final
    :func:`os.replace` never crosses a filesystem boundary).  If the body
    raises, the temporary file is removed and the destination is left
    exactly as it was.

    ``suffix`` is appended to the temporary name for writers that infer
    the format from the extension (e.g. ``numpy.savez`` appends ``.npz``
    to names without one).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=suffix
    )
    os.close(descriptor)
    temp = Path(temp_name)
    try:
        yield temp
        os.replace(temp, path)
        _fsync_directory(path.parent)
    except BaseException:
        with contextlib.suppress(OSError):
            temp.unlink()
        raise


def _fsync_directory(path: Path) -> None:
    """Flush a directory entry to disk (best effort; no-op where unsupported)."""
    try:
        descriptor = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        with contextlib.suppress(OSError):
            os.fsync(descriptor)
    finally:
        os.close(descriptor)


def _fsync_file(path: Path) -> None:
    """Flush an already-written file's contents to disk."""
    descriptor = os.open(path, os.O_RDONLY)
    try:
        os.fsync(descriptor)
    finally:
        os.close(descriptor)


def atomic_write_text(path: str | Path, text: str, encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``text`` (fsynced before the swap)."""
    with atomic_path(path) as temp:
        with temp.open("w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())


@contextlib.contextmanager
def atomic_open_text(
    path: str | Path, encoding: str = "utf-8", newline: str | None = None
) -> Iterator:
    """Yield a text handle whose contents atomically replace ``path``.

    For streaming writers (``csv.writer`` and friends) that want a file
    object rather than a final string.  The handle is flushed and
    fsynced before the swap; if the body raises, the destination is
    untouched.  ``newline`` is forwarded to :meth:`Path.open` (pass
    ``""`` for csv, per the stdlib docs).
    """
    with atomic_path(path) as temp:
        with temp.open("w", encoding=encoding, newline=newline) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Atomically replace ``path`` with ``data`` (fsynced before the swap)."""
    with atomic_path(path) as temp:
        with temp.open("wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())


def atomic_save(path: str | Path, writer: Callable[[Path], None], suffix: str = "") -> None:
    """Run ``writer(temp_path)`` and atomically move its output to ``path``.

    For writers that insist on opening the file themselves
    (``numpy.savez_compressed`` and friends).  The writer's output is
    fsynced before the swap, so a crash shortly after a save can never
    leave an empty or partial destination.
    """
    with atomic_path(path, suffix=suffix) as temp:
        writer(temp)
        _fsync_file(temp)


def fsync_append_line(path: str | Path, line: str, encoding: str = "utf-8") -> None:
    """Append one newline-terminated line and fsync it to disk.

    ``O_APPEND`` writes of a single small line are effectively atomic on
    POSIX filesystems; a kill between the write and the fsync can at
    worst leave one torn *final* line, which journal readers detect and
    ignore (see :mod:`repro.evaluation.checkpoint`).  Before appending,
    any torn tail left by a previous kill is truncated away — otherwise
    the new record would merge into the torn line and corrupt both.
    """
    if not line.endswith("\n"):
        line += "\n"
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a+b") as handle:
        _truncate_torn_tail(handle)
        handle.write(line.encode(encoding))
        handle.flush()
        os.fsync(handle.fileno())


def _truncate_torn_tail(handle) -> None:
    """Drop an unterminated final line from an append-mode binary handle.

    A torn tail is, by construction, data that was never acknowledged as
    durably written (its fsync did not complete), so removing it loses
    nothing a reader could have trusted.
    """
    size = handle.seek(0, os.SEEK_END)
    if size == 0:
        return
    handle.seek(size - 1)
    if handle.read(1) == b"\n":
        return
    position = size
    keep = 0
    while position > 0:
        step = min(4096, position)
        handle.seek(position - step)
        chunk = handle.read(step)
        newline = chunk.rfind(b"\n")
        if newline != -1:
            keep = position - step + newline + 1
            break
        position -= step
    handle.truncate(keep)
